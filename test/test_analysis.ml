(* Tests for the verifier / lint / mapping-validator subsystem: clean
   artefacts produce no diagnostics, and a battery of seeded corruptions
   each trips its specific rule id. *)

module G = Cdfg.Graph
module D = Fpfa_diag.Diag
module T = Transform
module Verify = Fpfa_analysis.Verify
module Lint = Fpfa_analysis.Lint
module Mapcheck = Fpfa_analysis.Mapcheck
module Dataflow = Fpfa_analysis.Dataflow
module Cluster = Mapping.Cluster
module Sched = Mapping.Sched
module Job = Mapping.Job

let kernel name =
  (Fpfa_kernels.Kernels.find name).Fpfa_kernels.Kernels.source

let map_kernel name = Fpfa_core.Flow.map_source (kernel name)

let flags what rule diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s flags %s" what rule)
    true (D.has_rule rule diags)

let rules diags = List.sort_uniq compare (List.map (fun d -> d.D.rule) diags)

(* {2 Clean artefacts produce no error diagnostics} *)

let test_clean_corpus () =
  List.iter
    (fun name ->
      let result = map_kernel name in
      let graph = result.Fpfa_core.Flow.graph in
      Alcotest.(check (list string))
        (name ^ " raw structure") []
        (rules (Verify.structure result.Fpfa_core.Flow.raw_graph));
      Alcotest.(check (list string))
        (name ^ " minimised verifier") []
        (rules (Verify.all graph));
      Alcotest.(check (list string))
        (name ^ " lint errors") []
        (rules (D.errors (Lint.run graph)));
      Alcotest.(check (list string))
        (name ^ " cluster") []
        (rules (Mapcheck.cluster result.Fpfa_core.Flow.clustering));
      Alcotest.(check (list string))
        (name ^ " sched") []
        (rules (Mapcheck.sched result.Fpfa_core.Flow.schedule));
      Alcotest.(check (list string))
        (name ^ " alloc") []
        (rules (Mapcheck.alloc result.Fpfa_core.Flow.job)))
    [ "fir-paper"; "dot-8"; "iir-6" ]

let test_index_errors_exported () =
  let result = map_kernel "fir-paper" in
  Alcotest.(check (list string))
    "incremental index consistent after minimisation" []
    (G.index_errors result.Fpfa_core.Flow.graph)

(* {2 Seeded CDFG corruptions, one per structure rule} *)

(* set_inputs/add/remove guard arity and references at mutation time, so
   those two corruptions use fabricated node records against the per-node
   checker; everything else corrupts a real graph through the public API. *)

let test_corrupt_arity () =
  let g = G.create "c" in
  let a = G.add g (G.Const 1) [] in
  let fake = { G.id = 99; kind = G.Mux; inputs = [| a |]; order_after = [] } in
  flags "1-input Mux" "cdfg.arity" (Verify.node g fake)

let test_corrupt_dangling () =
  let g = G.create "c" in
  let a = G.add g (G.Const 1) [] in
  let fake =
    { G.id = 99; kind = G.Unop Cdfg.Op.Neg; inputs = [| a + 77 |];
      order_after = [ a + 78 ] }
  in
  let diags = Verify.node g fake in
  flags "unknown input id" "cdfg.dangling-ref" diags;
  Alcotest.(check int) "both references reported" 2 (List.length diags)

let test_corrupt_port_type () =
  let g = G.create "c" in
  G.declare_region g "a" { G.size = Some 1; implicit = true };
  let tok = G.add g (G.Ss_in "a") [] in
  let c = G.add g (G.Const 1) [] in
  (* add checks arity, not port typing: a token flows into an adder. *)
  let _bad = G.add g (G.Binop Cdfg.Op.Add) [ tok; c ] in
  flags "token into Binop" "cdfg.port-type" (Verify.structure g)

let test_corrupt_token_region () =
  let g = G.create "c" in
  G.declare_region g "a" { G.size = Some 1; implicit = true };
  G.declare_region g "b" { G.size = Some 1; implicit = true };
  let tok_a = G.add g (G.Ss_in "a") [] in
  let off = G.add g (G.Const 0) [] in
  let _bad = G.add g (G.Fe "b") [ tok_a; off ] in
  flags "region-a token into region-b fetch" "cdfg.token-region"
    (Verify.structure g)

let test_corrupt_region_undeclared () =
  let g = G.create "c" in
  let _bad = G.add g (G.Ss_in "ghost") [] in
  flags "undeclared region" "cdfg.region-undeclared" (Verify.structure g)

let test_corrupt_duplicate_ss () =
  let g = G.create "c" in
  G.declare_region g "a" { G.size = Some 1; implicit = true };
  let _t1 = G.add g (G.Ss_in "a") [] in
  let _t2 = G.add g (G.Ss_in "a") [] in
  flags "two Ss_in" "cdfg.region-duplicate-ss" (Verify.structure g)

let test_corrupt_output_invalid () =
  let g = G.create "c" in
  G.declare_region g "a" { G.size = Some 1; implicit = false };
  let tok = G.add g (G.Ss_in "a") [] in
  let off = G.add g (G.Const 0) [] in
  let v = G.add g (G.Const 7) [] in
  let st = G.add g (G.St "a") [ tok; off; v ] in
  (* set_output checks existence, not valueness: bind a token producer. *)
  G.set_output g "x" st;
  flags "token as named output" "cdfg.output-invalid" (Verify.structure g)

let test_corrupt_cycle () =
  let g = G.create "c" in
  let a = G.add g (G.Const 1) [] in
  let b = G.add g (G.Const 2) [] in
  G.add_order g a ~after:b;
  G.add_order g b ~after:a;
  flags "order-edge 2-cycle" "cdfg.cycle" (Verify.structure g)

(* {2 Mappability corruptions} *)

let ss_graph ~offset_kind =
  let g = G.create "m" in
  G.declare_region g "a" { G.size = Some 4; implicit = true };
  let tok = G.add g (G.Ss_in "a") [] in
  let off =
    match offset_kind with
    | `Dynamic ->
      let z = G.add g (G.Const 0) [] in
      G.add g (G.Unop Cdfg.Op.Neg) [ z ]
    | `Negative -> G.add g (G.Const (-2)) []
  in
  let _fe = G.add g (G.Fe "a") [ tok; off ] in
  g

let test_corrupt_offset_dynamic () =
  let g = ss_graph ~offset_kind:`Dynamic in
  flags "computed offset" "ss.offset-dynamic" (Verify.mappability g);
  Alcotest.check_raises "check still raises"
    (Mapping.Legalize.Unmappable
       "node 3 has a dynamic statespace offset (unroll and simplify first)")
    (fun () -> Mapping.Legalize.check g)

let test_corrupt_offset_negative () =
  flags "negative offset" "ss.offset-negative"
    (Verify.mappability (ss_graph ~offset_kind:`Negative))

let test_corrupt_output_not_stored () =
  let g = G.create "m" in
  let v = G.add g (G.Const 3) [] in
  G.set_output g "x" v;
  flags "unstored output" "ss.output-not-stored" (Verify.mappability g)

(* {2 Lints} *)

let test_lint_dead_node () =
  let g = G.create "l" in
  G.declare_region g "x" { G.size = Some 1; implicit = false };
  let tok = G.add g (G.Ss_in "x") [] in
  let off = G.add g (G.Const 0) [] in
  let v = G.add g (G.Const 4) [] in
  let _st = G.add g (G.St "x") [ tok; off; v ] in
  let a = G.add g (G.Const 2) [] in
  let _dead = G.add g (G.Binop Cdfg.Op.Add) [ a; a ] in
  let diags = Lint.run g in
  flags "unconsumed adder" "lint.dead-node" diags;
  Alcotest.(check bool) "the store is not dead" false
    (D.has_rule "lint.dead-store" diags)

let test_lint_dead_store () =
  let g = G.create "l" in
  G.declare_region g "x" { G.size = Some 1; implicit = false };
  let tok = G.add g (G.Ss_in "x") [] in
  let off = G.add g (G.Const 0) [] in
  let v1 = G.add g (G.Const 4) [] in
  let v2 = G.add g (G.Const 5) [] in
  let st1 = G.add g (G.St "x") [ tok; off; v1 ] in
  let _st2 = G.add g (G.St "x") [ st1; off; v2 ] in
  let diags = Lint.run g in
  flags "overwritten-unread store" "lint.dead-store" diags;
  Alcotest.(check int) "exactly one dead store" 1
    (List.length
       (List.filter (fun d -> String.equal d.D.rule "lint.dead-store") diags))

let test_lint_dead_store_read_between () =
  let g = G.create "l" in
  G.declare_region g "x" { G.size = Some 1; implicit = false };
  G.declare_region g "y" { G.size = Some 1; implicit = false };
  let tok = G.add g (G.Ss_in "x") [] in
  let ytok = G.add g (G.Ss_in "y") [] in
  let off = G.add g (G.Const 0) [] in
  let v1 = G.add g (G.Const 4) [] in
  let v2 = G.add g (G.Const 5) [] in
  let st1 = G.add g (G.St "x") [ tok; off; v1 ] in
  let fe = G.add g (G.Fe "x") [ st1; off ] in
  let st2 = G.add g (G.St "x") [ st1; off; v2 ] in
  G.add_order g st2 ~after:fe;
  let _sty = G.add g (G.St "y") [ ytok; off; fe ] in
  Alcotest.(check bool) "intervening fetch keeps the store" false
    (D.has_rule "lint.dead-store" (Lint.run g))

let test_lint_fetch_uninit () =
  let g = G.create "l" in
  G.declare_region g "loc" { G.size = Some 2; implicit = false };
  G.declare_region g "inp" { G.size = Some 2; implicit = true };
  let t1 = G.add g (G.Ss_in "loc") [] in
  let t2 = G.add g (G.Ss_in "inp") [] in
  let off = G.add g (G.Const 0) [] in
  let f1 = G.add g (G.Fe "loc") [ t1; off ] in
  let _f2 = G.add g (G.Fe "inp") [ t2; off ] in
  G.set_output g "x" f1;
  let diags = Lint.run g in
  flags "read of uninitialised local" "lint.fetch-uninit" diags;
  Alcotest.(check int) "implicit (input) region exempt" 1
    (List.length
       (List.filter (fun d -> String.equal d.D.rule "lint.fetch-uninit") diags))

let test_lint_range_overflow () =
  let g = Cdfg.Builder.build_program "void main() { x = a * b; }" in
  flags "16-bit product" "lint.range-overflow" (Lint.run g)

(* An opaque-but-masked index: Fe of an implicit region, & with a
   constant. The address analysis bounds it to [0, mask]. *)
let masked_index g tok_inp mask =
  let c0 = G.add g (G.Const 0) [] in
  let cm = G.add g (G.Const mask) [] in
  let raw = G.add g (G.Fe "inp") [ tok_inp; c0 ] in
  G.add g (G.Binop Cdfg.Op.Band) [ raw; cm ]

let test_lint_band_fetch_uninit () =
  let g = G.create "l" in
  G.declare_region g "loc" { G.size = Some 8; implicit = false };
  G.declare_region g "inp" { G.size = Some 1; implicit = true };
  let tl = G.add g (G.Ss_in "loc") [] in
  let ti = G.add g (G.Ss_in "inp") [] in
  let idx = masked_index g ti 7 in
  let f1 = G.add g (G.Fe "loc") [ tl; idx ] in
  let c3 = G.add g (G.Const 3) [] in
  let v = G.add g (G.Const 9) [] in
  let st = G.add g (G.St "loc") [ tl; c3; v ] in
  let f2 = G.add g (G.Fe "loc") [ st; idx ] in
  G.set_output g "a" f1;
  G.set_output g "b" f2;
  let diags = Lint.run g in
  flags "band fetch of a never-written region" "lint.fetch-uninit" diags;
  Alcotest.(check int)
    "only the pre-store band fetch is flagged (one touched cell suffices)" 1
    (List.length
       (List.filter (fun d -> String.equal d.D.rule "lint.fetch-uninit") diags));
  Alcotest.(check bool) "no suppression: the band is bounded" false
    (D.has_rule "lint.suppressed" diags)

let test_lint_band_store_not_dead () =
  let g = G.create "l" in
  G.declare_region g "loc" { G.size = Some 8; implicit = false };
  G.declare_region g "inp" { G.size = Some 1; implicit = true };
  let tl = G.add g (G.Ss_in "loc") [] in
  let ti = G.add g (G.Ss_in "inp") [] in
  let idx = masked_index g ti 7 in
  let c0 = G.add g (G.Const 0) [] in
  let v1 = G.add g (G.Const 4) [] in
  let v2 = G.add g (G.Const 5) [] in
  let st1 = G.add g (G.St "loc") [ tl; c0; v1 ] in
  (* the band store may or may not overwrite loc[0] — a weak update, so
     st1 stays observable *)
  let _st2 = G.add g (G.St "loc") [ st1; idx; v2 ] in
  Alcotest.(check bool) "weak update keeps the earlier store" false
    (D.has_rule "lint.dead-store" (Lint.run g))

let test_lint_suppressed () =
  let g = G.create "l" in
  G.declare_region g "loc" { G.size = Some 8; implicit = false };
  G.declare_region g "inp" { G.size = Some 1; implicit = true };
  let tl = G.add g (G.Ss_in "loc") [] in
  let ti = G.add g (G.Ss_in "inp") [] in
  let c0 = G.add g (G.Const 0) [] in
  let v = G.add g (G.Const 9) [] in
  (* unmasked Fe: the analysis only knows the full datapath width, far
     wider than the cell-tracking span — Cell_unknown *)
  let raw = G.add g (G.Fe "inp") [ ti; c0 ] in
  let st = G.add g (G.St "loc") [ tl; raw; v ] in
  let f = G.add g (G.Fe "loc") [ st; c0 ] in
  G.set_output g "r" f;
  let diags = Lint.run g in
  flags "unbounded store offset announces itself" "lint.suppressed" diags;
  Alcotest.(check bool)
    "fetch-uninit is off for the region (the store may init any cell)" false
    (D.has_rule "lint.fetch-uninit" diags);
  Alcotest.(check bool) "suppression is informational" true
    (List.for_all
       (fun d -> d.D.severity = D.Info)
       (List.filter (fun d -> String.equal d.D.rule "lint.suppressed") diags))

let test_lint_suppressed_counts () =
  (* two unbounded stores into one region: still one suppression
     diagnostic, but it must total both accesses (check --json surfaces
     the count) and anchor to the first *)
  let g = G.create "l" in
  G.declare_region g "loc" { G.size = Some 8; implicit = false };
  G.declare_region g "inp" { G.size = Some 2; implicit = true };
  let tl = G.add g (G.Ss_in "loc") [] in
  let ti = G.add g (G.Ss_in "inp") [] in
  let c0 = G.add g (G.Const 0) [] in
  let c1 = G.add g (G.Const 1) [] in
  let v = G.add g (G.Const 9) [] in
  let raw0 = G.add g (G.Fe "inp") [ ti; c0 ] in
  let raw1 = G.add g (G.Fe "inp") [ ti; c1 ] in
  let st0 = G.add g (G.St "loc") [ tl; raw0; v ] in
  let st1 = G.add g (G.St "loc") [ st0; raw1; v ] in
  let f = G.add g (G.Fe "loc") [ st1; c0 ] in
  G.set_output g "r" f;
  let diags = Lint.run g in
  let suppressed =
    List.filter (fun d -> String.equal d.D.rule "lint.suppressed") diags
  in
  match suppressed with
  | [ d ] ->
    let has_sub sub =
      let msg = d.D.message in
      let n = String.length sub and m = String.length msg in
      let rec go i = i + n <= m && (String.sub msg i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "totals both suppressing stores" true
      (has_sub "2 store(s)");
    Alcotest.(check (option int)) "anchored to the first store" (Some st0)
      d.D.node
  | l ->
    Alcotest.failf "expected one suppression diagnostic, got %d"
      (List.length l)

let test_lint_suppressed_dead_store () =
  let g = G.create "l" in
  G.declare_region g "loc" { G.size = Some 8; implicit = false };
  G.declare_region g "inp" { G.size = Some 1; implicit = true };
  let tl = G.add g (G.Ss_in "loc") [] in
  let ti = G.add g (G.Ss_in "inp") [] in
  let c0 = G.add g (G.Const 0) [] in
  let v1 = G.add g (G.Const 4) [] in
  let v2 = G.add g (G.Const 5) [] in
  let raw = G.add g (G.Fe "inp") [ ti; c0 ] in
  let st1 = G.add g (G.St "loc") [ tl; c0; v1 ] in
  let st2 = G.add g (G.St "loc") [ st1; c0; v2 ] in
  (* an unbounded fetch may read loc[0] between the two stores *)
  let f = G.add g (G.Fe "loc") [ st1; raw ] in
  G.add_order g st2 ~after:f;
  G.set_output g "r" f;
  let diags = Lint.run g in
  flags "unbounded fetch offset announces itself" "lint.suppressed" diags;
  Alcotest.(check bool) "dead-store is off for the region" false
    (D.has_rule "lint.dead-store" diags)

let test_lint_out_of_region () =
  let g = G.create "l" in
  G.declare_region g "loc" { G.size = Some 4; implicit = false };
  G.declare_region g "inp" { G.size = Some 1; implicit = true };
  let tl = G.add g (G.Ss_in "loc") [] in
  let ti = G.add g (G.Ss_in "inp") [] in
  let idx = masked_index g ti 7 in
  let v = G.add g (G.Const 9) [] in
  (* offset in [0, 7] against a 4-cell region *)
  let st = G.add g (G.St "loc") [ tl; idx; v ] in
  let c2 = G.add g (G.Const 2) [] in
  let f = G.add g (G.Fe "loc") [ st; c2 ] in
  G.set_output g "r" f;
  let diags = Lint.run g in
  flags "bounded offset escaping the size" "addr.out-of-region" diags;
  Alcotest.(check int) "the in-bounds constant fetch is not flagged" 1
    (List.length
       (List.filter (fun d -> String.equal d.D.rule "addr.out-of-region") diags))

let test_lint_overlap_unknown () =
  let g = G.create "l" in
  G.declare_region g "a" { G.size = Some 8; implicit = true };
  G.declare_region g "inp" { G.size = Some 1; implicit = true };
  let ta = G.add g (G.Ss_in "a") [] in
  let ti = G.add g (G.Ss_in "inp") [] in
  let idx = masked_index g ti 7 in
  let c3 = G.add g (G.Const 3) [] in
  let v = G.add g (G.Const 9) [] in
  let fe_dyn = G.add g (G.Fe "a") [ ta; idx ] in
  let st = G.add g (G.St "a") [ ta; c3; v ] in
  G.add_order g st ~after:fe_dyn;
  G.set_output g "r" fe_dyn;
  let diags = Lint.run g in
  flags "undecidable fetch/store pair is reported" "addr.overlap-unknown"
    diags;
  Alcotest.(check bool) "as information, not a warning" true
    (List.for_all
       (fun d -> d.D.severity = D.Info)
       (List.filter
          (fun d -> String.equal d.D.rule "addr.overlap-unknown")
          diags))

let test_reaching_stores () =
  let g = G.create "l" in
  G.declare_region g "x" { G.size = Some 1; implicit = false };
  let tok = G.add g (G.Ss_in "x") [] in
  let off = G.add g (G.Const 0) [] in
  let v = G.add g (G.Const 4) [] in
  let st = G.add g (G.St "x") [ tok; off; v ] in
  let fe = G.add g (G.Fe "x") [ st; off ] in
  G.set_output g "r" fe;
  let reaching = Lint.reaching_stores g in
  Alcotest.(check (list int)) "the store reaches its fetch" [ st ]
    (G.Id_set.elements (reaching fe));
  Alcotest.(check (list int)) "non-fetch nodes have no reaching set" []
    (G.Id_set.elements (reaching st))

let test_liveness () =
  let g = G.create "l" in
  G.declare_region g "x" { G.size = Some 1; implicit = false };
  let tok = G.add g (G.Ss_in "x") [] in
  let off = G.add g (G.Const 0) [] in
  let a = G.add g (G.Const 2) [] in
  let kept = G.add g (G.Binop Cdfg.Op.Add) [ a; a ] in
  let _st = G.add g (G.St "x") [ tok; off; kept ] in
  let dead = G.add g (G.Binop Cdfg.Op.Mul) [ a; kept ] in
  let live = Lint.liveness g in
  Alcotest.(check bool) "stored sum is live" true (live kept);
  Alcotest.(check bool) "its constant is live" true (live a);
  Alcotest.(check bool) "unconsumed product is dead" false (live dead)

(* {2 Mapping-phase corruptions} *)

let test_corrupt_cluster_datapath () =
  let result = map_kernel "fir-paper" in
  let c = result.Fpfa_core.Flow.clustering in
  let cl = c.Cluster.clusters.(0) in
  let fat =
    match cl.Cluster.cinputs with
    | i :: _ -> [ i; i; i; i; i ]
    | [] -> List.init 5 (fun _ -> Option.get cl.Cluster.root)
  in
  c.Cluster.clusters.(0) <- { cl with Cluster.cinputs = fat };
  flags "5-operand cluster" "cluster.datapath" (Mapcheck.cluster c)

let test_corrupt_cluster_empty () =
  let result = map_kernel "fir-paper" in
  let c = result.Fpfa_core.Flow.clustering in
  let cl = c.Cluster.clusters.(0) in
  c.Cluster.clusters.(0) <-
    { cl with Cluster.ops = []; root = None; stores = []; deletes = [];
      cinputs = [] };
  flags "hollowed-out cluster" "cluster.empty" (Mapcheck.cluster c)

let test_corrupt_cluster_coverage () =
  let result = map_kernel "fir-paper" in
  let c = result.Fpfa_core.Flow.clustering in
  let victim =
    Hashtbl.fold (fun id _ acc -> max acc id) c.Cluster.cluster_of (-1)
  in
  Hashtbl.remove c.Cluster.cluster_of victim;
  flags "unmapped node" "cluster.coverage" (Mapcheck.cluster c)

let test_corrupt_cluster_cycle () =
  let result = map_kernel "fir-paper" in
  let c = result.Fpfa_core.Flow.clustering in
  let c =
    { c with
      Cluster.edges =
        { Cluster.src = 0; dst = 1; weight = 1 }
        :: { Cluster.src = 1; dst = 0; weight = 1 }
        :: c.Cluster.edges }
  in
  flags "two-cluster cycle" "cluster.cycle" (Mapcheck.cluster c)

let test_corrupt_sched_unplaced () =
  let result = map_kernel "fir-paper" in
  let s = result.Fpfa_core.Flow.schedule in
  s.Sched.level_of.(0) <- -1;
  flags "negative level" "sched.unplaced" (Mapcheck.sched s)

let test_corrupt_sched_dependence_and_capacity () =
  let result = map_kernel "fir-paper" in
  let s = result.Fpfa_core.Flow.schedule in
  (* Flatten the whole schedule into level 0: every weight-1 edge now
     violates its dependence and level 0 exceeds the 5-ALU capacity. *)
  let all = Array.to_list (Array.mapi (fun cid _ -> cid) s.Sched.level_of) in
  Array.iteri (fun cid _ -> s.Sched.level_of.(cid) <- 0) s.Sched.level_of;
  Array.iteri (fun lvl _ -> s.Sched.levels.(lvl) <- []) s.Sched.levels;
  s.Sched.levels.(0) <- all;
  let diags = Mapcheck.sched s in
  flags "flattened schedule" "sched.dependence" diags;
  flags "flattened schedule" "sched.capacity" diags

let test_corrupt_sched_asap () =
  let result = map_kernel "fir-paper" in
  let s = result.Fpfa_core.Flow.schedule in
  let cid =
    let found = ref None in
    Array.iteri
      (fun cid a -> if !found = None && a > 0 then found := Some cid)
      s.Sched.asap;
    Option.get !found
  in
  let old = s.Sched.level_of.(cid) in
  s.Sched.level_of.(cid) <- 0;
  s.Sched.levels.(old) <- List.filter (fun c -> c <> cid) s.Sched.levels.(old);
  s.Sched.levels.(0) <- cid :: s.Sched.levels.(0);
  flags "cluster before its ASAP level" "sched.asap" (Mapcheck.sched s)

let cycle_with ~pred job =
  let found = ref None in
  Array.iteri
    (fun i cyc -> if !found = None && pred cyc then found := Some i)
    job.Job.cycles;
  Option.get !found

let test_corrupt_alloc_pp_conflict () =
  let job = (map_kernel "fir-paper").Fpfa_core.Flow.job in
  let i = cycle_with job ~pred:(fun c -> c.Job.alu <> []) in
  let cyc = job.Job.cycles.(i) in
  job.Job.cycles.(i) <-
    { cyc with Job.alu = List.hd cyc.Job.alu :: cyc.Job.alu };
  flags "doubled ALU bundle" "alloc.pp-conflict" (Mapcheck.alloc job)

let test_corrupt_alloc_bus_capacity () =
  let job = (map_kernel "fir-paper").Fpfa_core.Flow.job in
  let i = cycle_with job ~pred:(fun c -> c.Job.moves <> []) in
  let cyc = job.Job.cycles.(i) in
  let mv = List.hd cyc.Job.moves in
  let flood =
    List.init (job.Job.tile.Fpfa_arch.Arch.buses + 1) (fun _ -> mv)
  in
  job.Job.cycles.(i) <- { cyc with Job.moves = flood };
  flags "flooded crossbar" "alloc.bus-capacity" (Mapcheck.alloc job)

let test_corrupt_alloc_reg_bounds () =
  let job = (map_kernel "fir-paper").Fpfa_core.Flow.job in
  let i = cycle_with job ~pred:(fun c -> c.Job.moves <> []) in
  let cyc = job.Job.cycles.(i) in
  let mv = List.hd cyc.Job.moves in
  let bad = { mv with Job.dst = { mv.Job.dst with Job.index = 999 } } in
  job.Job.cycles.(i) <- { cyc with Job.moves = bad :: List.tl cyc.Job.moves };
  flags "register index 999" "alloc.reg-bounds" (Mapcheck.alloc job)

let test_corrupt_alloc_mem_bounds () =
  let job = (map_kernel "fir-paper").Fpfa_core.Flow.job in
  let i = cycle_with job ~pred:(fun c -> c.Job.moves <> []) in
  let cyc = job.Job.cycles.(i) in
  let mv = List.hd cyc.Job.moves in
  let bad = { mv with Job.src = { mv.Job.src with Job.addr = 99_999 } } in
  job.Job.cycles.(i) <- { cyc with Job.moves = bad :: List.tl cyc.Job.moves };
  flags "memory address 99999" "alloc.mem-bounds" (Mapcheck.alloc job)

let test_corrupt_alloc_conflicts () =
  let job = (map_kernel "fir-paper").Fpfa_core.Flow.job in
  let i = cycle_with job ~pred:(fun c -> c.Job.moves <> []) in
  let cyc = job.Job.cycles.(i) in
  let mv = List.hd cyc.Job.moves in
  job.Job.cycles.(i) <- { cyc with Job.moves = [ mv; mv ] };
  let diags = Mapcheck.alloc job in
  flags "duplicated move (bank port)" "alloc.write-conflict" diags;
  flags "duplicated move (memory port)" "alloc.read-conflict" diags

(* {2 The verify-each-pass hook} *)

let test_verification_blames_rule () =
  let g = Cdfg.Builder.build_program "void main() { x = a + b; }" in
  let binop =
    G.fold g ~init:None ~f:(fun acc n ->
        match n.G.kind with G.Binop _ -> Some n.G.id | _ -> acc)
    |> Option.get
  in
  let token =
    G.fold g ~init:None ~f:(fun acc n ->
        match n.G.kind with G.Ss_in _ -> Some n.G.id | _ -> acc)
    |> Option.get
  in
  (* set_inputs preserves arity and reference validity but not port
     typing: this "rewrite" feeds a statespace token into the adder. *)
  let sabotage =
    T.Pass.local "sabotage" (fun g id ->
        if id = binop && G.mem g binop then begin
          let other = List.nth (G.inputs g binop) 1 in
          G.set_inputs g binop [ token; other ];
          true
        end
        else false)
  in
  match
    T.Pass.run_worklist ~verify:(Verify.pass_hook ()) [ sabotage ] g
  with
  | (_ : T.Pass.worklist_report) ->
    Alcotest.fail "sabotage rule escaped verification"
  | exception T.Pass.Verification_failed { rule; error } ->
    Alcotest.(check string) "blamed rule" "sabotage" rule;
    (match error with
    | D.Failed diags -> flags "hook payload" "cdfg.port-type" diags
    | e -> raise e)

let test_verify_each_clean_flow () =
  let config =
    { Fpfa_core.Flow.default_config with Fpfa_core.Flow.verify_each = true }
  in
  let result = Fpfa_core.Flow.map_source ~config (kernel "fir-paper") in
  Alcotest.(check bool) "flow verifies end to end" true
    (Fpfa_core.Flow.verify
       ~memory_init:(Fpfa_kernels.Kernels.find "fir-paper").Fpfa_kernels.Kernels.inputs
       result)

(* {2 Properties} *)

let worklist_rules_stay_clean =
  QCheck.Test.make ~name:"worklist rules keep random DAGs verifier-clean"
    ~count:120
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let g = Fpfa_kernels.Random_graph.generate ~seed ~ops:60 () in
      ignore
        (T.Simplify.minimize ~rules:T.Simplify.extended_rules ~validate:false
           ~verify:(Verify.pass_hook ()) g);
      Verify.structure g = [])

let fixpoint_passes_stay_clean =
  QCheck.Test.make ~name:"fixpoint passes keep random DAGs verifier-clean"
    ~count:40
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let g = Fpfa_kernels.Random_graph.generate ~seed ~ops:40 () in
      ignore
        (T.Simplify.minimize ~passes:T.Simplify.extended_passes
           ~validate:false ~verify:(Verify.pass_hook ()) g);
      Verify.structure g = [])

let suite =
  [
    Alcotest.test_case "clean corpus has no diagnostics" `Quick
      test_clean_corpus;
    Alcotest.test_case "index_errors exported and empty" `Quick
      test_index_errors_exported;
    Alcotest.test_case "corrupt: arity" `Quick test_corrupt_arity;
    Alcotest.test_case "corrupt: dangling ref" `Quick test_corrupt_dangling;
    Alcotest.test_case "corrupt: port type" `Quick test_corrupt_port_type;
    Alcotest.test_case "corrupt: token region" `Quick
      test_corrupt_token_region;
    Alcotest.test_case "corrupt: undeclared region" `Quick
      test_corrupt_region_undeclared;
    Alcotest.test_case "corrupt: duplicate Ss_in" `Quick
      test_corrupt_duplicate_ss;
    Alcotest.test_case "corrupt: non-value output" `Quick
      test_corrupt_output_invalid;
    Alcotest.test_case "corrupt: order cycle" `Quick test_corrupt_cycle;
    Alcotest.test_case "corrupt: dynamic offset" `Quick
      test_corrupt_offset_dynamic;
    Alcotest.test_case "corrupt: negative offset" `Quick
      test_corrupt_offset_negative;
    Alcotest.test_case "corrupt: unstored output" `Quick
      test_corrupt_output_not_stored;
    Alcotest.test_case "lint: dead node" `Quick test_lint_dead_node;
    Alcotest.test_case "lint: dead store" `Quick test_lint_dead_store;
    Alcotest.test_case "lint: store kept by fetch" `Quick
      test_lint_dead_store_read_between;
    Alcotest.test_case "lint: fetch uninitialised" `Quick
      test_lint_fetch_uninit;
    Alcotest.test_case "lint: range overflow" `Quick test_lint_range_overflow;
    Alcotest.test_case "lint: band fetch uninitialised" `Quick
      test_lint_band_fetch_uninit;
    Alcotest.test_case "lint: band store not dead" `Quick
      test_lint_band_store_not_dead;
    Alcotest.test_case "lint: unbounded store suppresses uninit" `Quick
      test_lint_suppressed;
    Alcotest.test_case "lint: unbounded fetch suppresses dead-store" `Quick
      test_lint_suppressed_dead_store;
    Alcotest.test_case "lint: suppression totals accesses" `Quick
      test_lint_suppressed_counts;
    Alcotest.test_case "lint: out-of-region offset" `Quick
      test_lint_out_of_region;
    Alcotest.test_case "lint: undecidable overlap reported" `Quick
      test_lint_overlap_unknown;
    Alcotest.test_case "dataflow: reaching stores" `Quick test_reaching_stores;
    Alcotest.test_case "dataflow: liveness" `Quick test_liveness;
    Alcotest.test_case "corrupt: cluster datapath" `Quick
      test_corrupt_cluster_datapath;
    Alcotest.test_case "corrupt: cluster empty" `Quick
      test_corrupt_cluster_empty;
    Alcotest.test_case "corrupt: cluster coverage" `Quick
      test_corrupt_cluster_coverage;
    Alcotest.test_case "corrupt: cluster cycle" `Quick
      test_corrupt_cluster_cycle;
    Alcotest.test_case "corrupt: sched unplaced" `Quick
      test_corrupt_sched_unplaced;
    Alcotest.test_case "corrupt: sched dependence+capacity" `Quick
      test_corrupt_sched_dependence_and_capacity;
    Alcotest.test_case "corrupt: sched asap" `Quick test_corrupt_sched_asap;
    Alcotest.test_case "corrupt: alloc pp conflict" `Quick
      test_corrupt_alloc_pp_conflict;
    Alcotest.test_case "corrupt: alloc bus capacity" `Quick
      test_corrupt_alloc_bus_capacity;
    Alcotest.test_case "corrupt: alloc reg bounds" `Quick
      test_corrupt_alloc_reg_bounds;
    Alcotest.test_case "corrupt: alloc mem bounds" `Quick
      test_corrupt_alloc_mem_bounds;
    Alcotest.test_case "corrupt: alloc port conflicts" `Quick
      test_corrupt_alloc_conflicts;
    Alcotest.test_case "verify-each blames the firing rule" `Quick
      test_verification_blames_rule;
    Alcotest.test_case "verify-each flow stays correct" `Quick
      test_verify_each_clean_flow;
    QCheck_alcotest.to_alcotest worklist_rules_stay_clean;
    QCheck_alcotest.to_alcotest fixpoint_passes_stay_clean;
  ]
