(* Tests of the lib/obs observability subsystem: disabled-mode
   transparency, span nesting (including a qcheck property over random
   span trees), Chrome-trace JSON export on a real kernel, and
   consistency of the counters reported by the allocator/simulator
   against Mapping.Metrics. *)

module Obs = Fpfa_obs.Obs
module Q = QCheck

(* Every test runs against a deterministic ticking clock and restores
   the global obs state afterwards — the whole suite shares one binary. *)
let with_obs f =
  let t = ref 0.0 in
  Obs.set_clock (fun () ->
      t := !t +. 0.001;
      !t);
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_clock Sys.time)
    f

(* ----------------------- minimal JSON validator ---------------------- *)

(* Recursive-descent check that a string is one well-formed JSON value.
   No external dependency is available, and the exporter hand-writes its
   output, so parse the grammar for real instead of spot-checking. *)
let json_is_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let exception Bad in
  let expect c =
    match peek () with Some d when d = c -> advance () | _ -> raise Bad
  in
  let literal word =
    String.iter (fun c -> expect c) word
  in
  let pstring () =
    expect '"';
    let rec chars () =
      match peek () with
      | None -> raise Bad
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          chars ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> raise Bad
          done;
          chars ()
        | _ -> raise Bad)
      | Some c when Char.code c < 0x20 -> raise Bad
      | Some _ ->
        advance ();
        chars ()
    in
    chars ()
  in
  let digits () =
    let start = !pos in
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      advance ()
    done;
    if !pos = start then raise Bad
  in
  let pnumber () =
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ())
  in
  let rec pvalue () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          pstring ();
          skip_ws ();
          expect ':';
          pvalue ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> raise Bad
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          pvalue ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> raise Bad
        in
        elements ()
      end
    | Some '"' -> pstring ()
    | Some ('-' | '0' .. '9') -> pnumber ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | _ -> raise Bad);
    skip_ws ()
  in
  match
    pvalue ();
    !pos = n
  with
  | reached_end -> reached_end
  | exception Bad -> false

let contains haystack needle =
  let h = String.length haystack and m = String.length needle in
  let rec go i = i + m <= h && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

(* ------------------------------ basics ------------------------------ *)

let test_disabled_is_transparent () =
  Obs.disable ();
  Obs.reset ();
  let c = Obs.counter "test.disabled" in
  Obs.incr c;
  Obs.add c 41;
  Obs.set c 7;
  Obs.record_max c 9;
  let v = Obs.span "nothing" (fun () -> 42) in
  Alcotest.(check int) "span is identity" 42 v;
  Alcotest.(check int) "counter untouched" 0 (Obs.value c);
  Alcotest.(check int) "no spans recorded" 0 (List.length (Obs.spans ()))

let test_span_nesting () =
  with_obs @@ fun () ->
  let x =
    Obs.span ~cat:"t" "outer" (fun () ->
        let a = Obs.span ~cat:"t" "inner-1" (fun () -> 1) in
        let b = Obs.span ~cat:"t" "inner-2" (fun () -> 2) in
        a + b)
  in
  Alcotest.(check int) "value" 3 x;
  let spans = Obs.spans () in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name =
    List.find (fun s -> String.equal s.Obs.sname name) spans
  in
  let outer = find "outer" and i1 = find "inner-1" and i2 = find "inner-2" in
  Alcotest.(check (option int)) "outer is a root" None outer.Obs.sparent;
  Alcotest.(check (option int))
    "inner-1 inside outer" (Some outer.Obs.sid) i1.Obs.sparent;
  Alcotest.(check (option int))
    "inner-2 inside outer" (Some outer.Obs.sid) i2.Obs.sparent;
  Alcotest.(check bool) "children complete first" true
    (match List.map (fun s -> s.Obs.sname) spans with
    | [ "inner-1"; "inner-2"; "outer" ] -> true
    | _ -> false)

let test_span_closes_on_raise () =
  with_obs @@ fun () ->
  (try
     Obs.span "boom" (fun () -> failwith "expected") |> ignore;
     Alcotest.fail "exception swallowed"
   with Failure msg -> Alcotest.(check string) "re-raised" "expected" msg);
  match Obs.spans () with
  | [ s ] ->
    Alcotest.(check string) "span recorded despite raise" "boom" s.Obs.sname;
    Alcotest.(check bool) "duration non-negative" true (s.Obs.sdur >= 0.0)
  | spans ->
    Alcotest.failf "expected exactly one span, got %d" (List.length spans)

let test_counter_registry () =
  with_obs @@ fun () ->
  let c = Obs.counter "test.registry" in
  Alcotest.(check bool) "handles are idempotent" true
    (Obs.counter "test.registry" == c);
  Obs.incr c;
  Obs.add c 9;
  Alcotest.(check int) "incr/add" 10 (Obs.value c);
  Obs.record_max c 5;
  Alcotest.(check int) "record_max keeps high-water mark" 10 (Obs.value c);
  Obs.record_max c 25;
  Alcotest.(check int) "record_max raises it" 25 (Obs.value c);
  Obs.set c 3;
  Alcotest.(check int) "set overwrites" 3 (Obs.value c);
  Alcotest.(check (option int))
    "find_counter" (Some 3)
    (Obs.find_counter "test.registry");
  Alcotest.(check (option int))
    "find_counter misses unknown names" None
    (Obs.find_counter "test.no-such-counter")

(* --------------------- qcheck: spans well-nested --------------------- *)

type tree = Node of int * tree list

let tree_gen : tree Q.Gen.t =
  Q.Gen.(
    sized
    @@ fix (fun self size ->
           map2
             (fun tag kids -> Node (tag, kids))
             (int_range 0 9)
             (if size = 0 then return []
              else list_size (int_range 0 3) (self (size / 4)))))

let rec tree_print (Node (tag, kids)) =
  Printf.sprintf "Node(%d,[%s])" tag
    (String.concat ";" (List.map tree_print kids))

let tree_arb = Q.make ~print:tree_print tree_gen

let rec tree_size (Node (_, kids)) =
  1 + Fpfa_util.Listx.sum (List.map tree_size kids)

let spans_well_nested =
  Q.Test.make ~name:"spans are well-nested with non-negative durations"
    ~count:100 tree_arb (fun tree ->
      with_obs @@ fun () ->
      let rec exec (Node (tag, kids)) =
        Obs.span ~cat:"q" ("n" ^ string_of_int tag) (fun () ->
            List.iter exec kids)
      in
      exec tree;
      let spans = Obs.spans () in
      let by_id s = List.find (fun p -> p.Obs.sid = s) spans in
      List.length spans = tree_size tree
      && List.for_all
           (fun s ->
             s.Obs.sdur >= 0.0
             &&
             match s.Obs.sparent with
             | None -> true
             | Some pid ->
               let p = by_id pid in
               (* child interval contained in the parent's *)
               s.Obs.sstart >= p.Obs.sstart
               && s.Obs.sstart +. s.Obs.sdur <= p.Obs.sstart +. p.Obs.sdur)
           spans)

(* ------------------- Chrome trace on a real kernel ------------------- *)

let kernel name = Fpfa_kernels.Kernels.find name

let test_chrome_trace_kernel () =
  with_obs @@ fun () ->
  let k = kernel "dot-8" in
  let result = Fpfa_core.Flow.map_source k.Fpfa_kernels.Kernels.source in
  let ok =
    Fpfa_core.Flow.verify ~memory_init:k.Fpfa_kernels.Kernels.inputs result
  in
  Alcotest.(check bool) "kernel verifies" true ok;
  let json = Obs.chrome_trace () in
  Alcotest.(check bool) "trace is valid JSON" true (json_is_valid json);
  Alcotest.(check bool) "has traceEvents" true
    (contains json "\"traceEvents\"");
  (* all five mapping stages, plus sim cycle spans, appear as X events *)
  List.iter
    (fun stage ->
      Alcotest.(check bool) ("stage span: " ^ stage) true
        (contains json (Printf.sprintf "{\"name\":\"%s\"" stage)))
    [ "parse"; "simplify"; "cluster"; "schedule"; "allocate"; "verify" ];
  Alcotest.(check bool) "sim cycle span" true
    (contains json "{\"name\":\"cycle 0\"");
  Alcotest.(check bool) "complete events" true (contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "counter events" true (contains json "\"ph\":\"C\"");
  Alcotest.(check bool) "counter: sim.moves" true
    (contains json "{\"name\":\"sim.moves\"")

let test_stats_report_kernel () =
  with_obs @@ fun () ->
  let k = kernel "dot-8" in
  let _ = Fpfa_core.Flow.map_source k.Fpfa_kernels.Kernels.source in
  let report = Obs.stats_report () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("report mentions " ^ needle) true
        (contains report needle))
    [
      "counters:"; "pass.rewrites"; "sched.levels"; "alloc.moves";
      "spans (cat/name, count, total):"; "flow/allocate";
    ]

(* -------------------- counters vs Mapping.Metrics -------------------- *)

(* The obs counters are incremented by independent code paths (allocator
   record-keeping, simulator execution); Mapping.Metrics recomputes the
   same quantities from the finished job. They must agree exactly. *)
let test_counters_match_metrics () =
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      with_obs @@ fun () ->
      let name = k.Fpfa_kernels.Kernels.name in
      let result = Fpfa_core.Flow.map_source k.Fpfa_kernels.Kernels.source in
      let m = result.Fpfa_core.Flow.metrics in
      let get cname =
        match Obs.find_counter cname with
        | Some v -> v
        | None -> Alcotest.failf "%s: counter %s never registered" name cname
      in
      Alcotest.(check int) (name ^ " alloc.moves") m.Mapping.Metrics.moves
        (get "alloc.moves");
      Alcotest.(check int)
        (name ^ " alloc.forwards")
        m.Mapping.Metrics.forwards (get "alloc.forwards");
      Alcotest.(check int)
        (name ^ " alloc.preserve_copies")
        (m.Mapping.Metrics.mem_reads - m.Mapping.Metrics.moves)
        (get "alloc.preserve_copies");
      Alcotest.(check int) (name ^ " sched.levels") m.Mapping.Metrics.levels
        (get "sched.levels");
      (* the simulator counts as it executes; metrics derive from the job *)
      let _ =
        Fpfa_sim.Sim.run ~memory_init:k.Fpfa_kernels.Kernels.inputs
          result.Fpfa_core.Flow.job
      in
      Alcotest.(check int) (name ^ " sim.cycles") m.Mapping.Metrics.cycles
        (get "sim.cycles");
      Alcotest.(check int) (name ^ " sim.moves") m.Mapping.Metrics.moves
        (get "sim.moves");
      Alcotest.(check int)
        (name ^ " sim.writebacks")
        m.Mapping.Metrics.mem_writes (get "sim.writebacks");
      Alcotest.(check int) (name ^ " sim.deletes") m.Mapping.Metrics.deletes
        (get "sim.deletes");
      Alcotest.(check int)
        (name ^ " sim.alu_firings")
        m.Mapping.Metrics.alu_firings (get "sim.alu_firings"))
    Fpfa_kernels.Kernels.all

(* The pass engine's step counter must agree with the simplifier's own
   report, which is assembled from the engine's return value. *)
let test_pass_steps_match_report () =
  with_obs @@ fun () ->
  let k = kernel "fir-paper" in
  let result = Fpfa_core.Flow.map_source k.Fpfa_kernels.Kernels.source in
  let report = result.Fpfa_core.Flow.simplify_report in
  Alcotest.(check int) "pass.steps"
    report.Transform.Simplify.steps
    (match Obs.find_counter "pass.steps" with Some v -> v | None -> -1)

let suite =
  [
    Alcotest.test_case "disabled mode is transparent" `Quick
      test_disabled_is_transparent;
    Alcotest.test_case "span nesting and parents" `Quick test_span_nesting;
    Alcotest.test_case "span closes on raise" `Quick test_span_closes_on_raise;
    Alcotest.test_case "counter registry" `Quick test_counter_registry;
    QCheck_alcotest.to_alcotest spans_well_nested;
    Alcotest.test_case "chrome trace on dot-8" `Quick test_chrome_trace_kernel;
    Alcotest.test_case "stats report on dot-8" `Quick test_stats_report_kernel;
    Alcotest.test_case "counters match metrics" `Quick
      test_counters_match_metrics;
    Alcotest.test_case "pass.steps matches simplify report" `Quick
      test_pass_steps_match_report;
  ]
