(* The serve daemon: LRU mechanics, cache-hit/miss result identity over
   the whole kernel corpus, near-miss resumption, batch admission
   through the pool, cache control, disk persistence, and the socket
   loop end to end. *)

module Serve = Fpfa_serve.Serve
module Lru = Fpfa_serve.Lru
module Json = Fpfa_util.Json
module Kernels = Fpfa_kernels.Kernels

(* {2 LRU} *)

let test_lru_basics () =
  let c = Lru.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Lru.capacity c);
  Alcotest.(check (list (pair string int))) "no evictions" []
    (Lru.add c "a" 1);
  ignore (Lru.add c "b" 2);
  ignore (Lru.add c "c" 3);
  Alcotest.(check int) "length" 3 (Lru.length c);
  Alcotest.(check (option int)) "find" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "miss" None (Lru.find c "zz");
  Alcotest.(check (list string)) "mru first" [ "a"; "c"; "b" ] (Lru.keys c)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:3 in
  ignore (Lru.add c "a" 1);
  ignore (Lru.add c "b" 2);
  ignore (Lru.add c "c" 3);
  (* bump a: LRU is now b *)
  ignore (Lru.find c "a");
  Alcotest.(check (list (pair string int)))
    "b evicted first" [ ("b", 2) ] (Lru.add c "d" 4);
  Alcotest.(check (list string)) "keys" [ "d"; "a"; "c" ] (Lru.keys c);
  (* replacement bumps but never evicts *)
  Alcotest.(check (list (pair string int))) "replace" [] (Lru.add c "c" 30);
  Alcotest.(check (list string)) "after replace" [ "c"; "d"; "a" ] (Lru.keys c);
  Alcotest.(check (option int)) "new value" (Some 30) (Lru.peek c "c");
  let s = Lru.stats c in
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "hits" 1 s.Lru.hits;
  Alcotest.(check int) "misses" 0 s.Lru.misses

let test_lru_capacity_zero () =
  let c = Lru.create ~capacity:0 in
  Alcotest.(check (list (pair string int)))
    "fresh insert evicted" [ ("a", 1) ] (Lru.add c "a" 1);
  Alcotest.(check int) "empty" 0 (Lru.length c);
  Alcotest.(check (option int)) "always miss" None (Lru.find c "a")

let test_lru_set_capacity () =
  let c = Lru.create ~capacity:4 in
  List.iter (fun (k, v) -> ignore (Lru.add c k v))
    [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ];
  (* LRU first: a then b *)
  Alcotest.(check (list (pair string int)))
    "shrink evicts lru first" [ ("a", 1); ("b", 2) ] (Lru.set_capacity c 2);
  Alcotest.(check int) "new capacity" 2 (Lru.capacity c);
  Alcotest.(check (list string)) "survivors" [ "d"; "c" ] (Lru.keys c);
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c)

(* {2 Protocol helpers} *)

let req fmt = Format.kasprintf Json.parse fmt

let field name resp =
  match Json.member name resp with
  | Some v -> v
  | None -> Alcotest.fail ("response missing field " ^ name)

let is_ok resp =
  match field "ok" resp with Json.Bool b -> b | _ -> false

let result_bytes resp = Json.to_string (field "result" resp)

let cached_of resp =
  match field "cached" resp with Json.Str s -> Some s | _ -> None

let resumed_of resp =
  match field "resumed_from" resp with Json.Str s -> Some s | _ -> None

let expect_ok resp =
  if not (is_ok resp) then
    Alcotest.fail ("request failed: " ^ Json.to_string resp);
  resp

(* {2 Protocol basics} *)

let test_serve_ping_and_errors () =
  let s = Serve.create () in
  let pong = expect_ok (Serve.handle s (req {|{"op":"ping","id":7}|})) in
  Alcotest.(check bool) "id echoed" true (field "id" pong = Json.Int 7);
  Alcotest.(check bool)
    "unknown op rejected" false
    (is_ok (Serve.handle s (req {|{"op":"frobnicate"}|})));
  Alcotest.(check bool)
    "unknown kernel rejected" false
    (is_ok (Serve.handle s (req {|{"op":"compile","kernel":"nope-nope"}|})));
  Alcotest.(check bool)
    "bad source is an error envelope, not an exception" false
    (is_ok (Serve.handle s (req {|{"op":"compile","source":"int main( {"}|})));
  (* malformed JSON still answers with an envelope *)
  let resp = Json.parse (Serve.handle_line s "{nope") in
  Alcotest.(check bool) "parse error envelope" false (is_ok resp);
  Alcotest.(check bool) "still running" true (Serve.running s);
  ignore (expect_ok (Serve.handle s (req {|{"op":"shutdown"}|})));
  Alcotest.(check bool) "stopped" false (Serve.running s);
  Serve.shutdown s

(* {2 Cache semantics: hit equals miss, byte for byte, whole corpus} *)

let test_corpus_hit_equals_miss () =
  let cached = Serve.create ~cache_size:256 () in
  let uncached = Serve.create ~cache_size:0 () in
  List.iter
    (fun (k : Kernels.t) ->
      let r = req {|{"op":"compile","kernel":"%s"}|} k.Kernels.name in
      let cold = expect_ok (Serve.handle cached r) in
      let warm = expect_ok (Serve.handle cached r) in
      let off = expect_ok (Serve.handle uncached r) in
      Alcotest.(check (option string))
        (k.Kernels.name ^ " cold not cached")
        None (cached_of cold);
      Alcotest.(check (option string))
        (k.Kernels.name ^ " warm is a request hit")
        (Some "request") (cached_of warm);
      Alcotest.(check string)
        (k.Kernels.name ^ " warm result identical")
        (result_bytes cold) (result_bytes warm);
      Alcotest.(check string)
        (k.Kernels.name ^ " cache-off result identical")
        (result_bytes cold) (result_bytes off);
      Alcotest.(check string)
        (k.Kernels.name ^ " digest stable")
        (Json.to_string (field "digest" cold))
        (Json.to_string (field "digest" off)))
    Kernels.all;
  Serve.shutdown cached;
  Serve.shutdown uncached

(* A mapping-level hit: same CDFG+config reached through a different
   request spelling (explicit tile values = the variant's defaults). *)
let test_mapping_level_hit () =
  let s = Serve.create () in
  let r1 = expect_ok (Serve.handle s (req {|{"op":"compile","kernel":"dct4"}|})) in
  let r2 =
    expect_ok
      (Serve.handle s
         (req {|{"op":"compile","kernel":"dct4","alus":5,"buses":10}|}))
  in
  Alcotest.(check (option string)) "request-level miss, mapping-level hit"
    (Some "mapping") (cached_of r2);
  Alcotest.(check string) "same payload" (result_bytes r1) (result_bytes r2);
  Serve.shutdown s

(* The bitopt toggle changes the minimised graph, so it is part of the
   config fingerprint: flipping it must miss every cache level and
   produce a different mapping on a kernel the pass rewrites. *)
let test_bitopt_keys_cache () =
  let s = Serve.create () in
  let on_ =
    expect_ok (Serve.handle s (req {|{"op":"compile","kernel":"pack565-4"}|}))
  in
  let off =
    expect_ok
      (Serve.handle s
         (req {|{"op":"compile","kernel":"pack565-4","bitopt":false}|}))
  in
  Alcotest.(check (option string)) "toggle misses the mapping cache" None
    (cached_of off);
  Alcotest.(check bool)
    "toggle changes the mapping" false
    (String.equal (result_bytes on_) (result_bytes off));
  (* spelling the default explicitly lands on the same fingerprint *)
  let explicit =
    expect_ok
      (Serve.handle s
         (req {|{"op":"compile","kernel":"pack565-4","bitopt":true}|}))
  in
  Alcotest.(check (option string)) "explicit default hits" (Some "mapping")
    (cached_of explicit);
  Alcotest.(check string) "same payload" (result_bytes on_)
    (result_bytes explicit);
  Serve.shutdown s

(* The assumed input width changes which rewrites the bit-level stage
   can justify, so it too is part of the config fingerprint: a non-default
   width must miss the mapping cache, and spelling the default width
   explicitly must land on the default fingerprint. *)
let test_width_keys_cache () =
  let s = Serve.create () in
  let default =
    expect_ok (Serve.handle s (req {|{"op":"compile","kernel":"pack565-4"}|}))
  in
  let wide =
    expect_ok
      (Serve.handle s
         (req {|{"op":"compile","kernel":"pack565-4","width":32}|}))
  in
  Alcotest.(check (option string)) "width change misses the mapping cache"
    None (cached_of wide);
  let explicit =
    expect_ok
      (Serve.handle s
         (req {|{"op":"compile","kernel":"pack565-4","width":16}|}))
  in
  Alcotest.(check (option string)) "explicit default width hits"
    (Some "mapping") (cached_of explicit);
  Alcotest.(check string) "same payload as the default" (result_bytes default)
    (result_bytes explicit);
  (* out-of-range widths are rejected, not silently clamped *)
  Alcotest.(check bool) "width 64 rejected" false
    (is_ok (Serve.handle s (req {|{"op":"compile","kernel":"fir","width":64}|})));
  Serve.shutdown s

let test_near_miss_resumes () =
  let s = Serve.create () in
  let uncached = Serve.create ~cache_size:0 () in
  ignore (expect_ok (Serve.handle s (req {|{"op":"compile","kernel":"fir-paper"}|})));
  let resumed =
    expect_ok
      (Serve.handle s (req {|{"op":"compile","kernel":"fir-paper","alus":3}|}))
  in
  let fresh =
    expect_ok
      (Serve.handle uncached
         (req {|{"op":"compile","kernel":"fir-paper","alus":3}|}))
  in
  Alcotest.(check bool)
    "resumed from a later phase" true
    (resumed_of resumed <> None);
  Alcotest.(check string)
    "resumed result equals fresh compile"
    (result_bytes fresh) (result_bytes resumed);
  (* Changing only the allocator-facing window resumes even later. The
     digest index tracks the most recent entry, so use a fresh daemon
     whose cached checkpoint has the same ALU count. *)
  let s2 = Serve.create () in
  ignore
    (expect_ok (Serve.handle s2 (req {|{"op":"compile","kernel":"fir-paper"}|})));
  let resumed2 =
    expect_ok
      (Serve.handle s2 (req {|{"op":"compile","kernel":"fir-paper","window":3}|}))
  in
  let fresh2 =
    expect_ok
      (Serve.handle uncached
         (req {|{"op":"compile","kernel":"fir-paper","window":3}|}))
  in
  Alcotest.(check (option string))
    "window change resumes at scheduled" (Some "scheduled")
    (resumed_of resumed2);
  Alcotest.(check string)
    "window resume result equals fresh"
    (result_bytes fresh2) (result_bytes resumed2);
  Serve.shutdown s;
  Serve.shutdown s2;
  Serve.shutdown uncached

(* {2 Batch admission through the pool: the concurrent-clients hammer} *)

let test_batch_hammer_matches_sequential () =
  let names =
    List.filteri (fun i _ -> i < 6)
      (List.map (fun (k : Kernels.t) -> k.Kernels.name) Kernels.all)
  in
  (* every kernel twice, interleaved, like impatient clients re-asking *)
  let hammer = names @ names in
  let sub name = Printf.sprintf {|{"op":"compile","kernel":"%s"}|} name in
  let batch_req =
    req {|{"op":"batch","requests":[%s]}|}
      (String.concat "," (List.map sub hammer))
  in
  let parallel = Serve.create ~jobs:4 () in
  let sequential = Serve.create ~jobs:1 () in
  let presp = expect_ok (Serve.handle parallel batch_req) in
  let responses =
    match Json.member "responses" (field "result" presp) with
    | Some (Json.List rs) -> rs
    | _ -> Alcotest.fail "batch result has no responses"
  in
  Alcotest.(check int) "one response per request" (List.length hammer)
    (List.length responses);
  List.iter2
    (fun name resp ->
      let resp = expect_ok resp in
      let direct =
        expect_ok (Serve.handle sequential (req "%s" (sub name)))
      in
      Alcotest.(check string)
        (name ^ " batch equals sequential")
        (result_bytes direct) (result_bytes resp))
    hammer responses;
  (* second round of the same batch is answered from the request cache *)
  let again = expect_ok (Serve.handle parallel batch_req) in
  (match Json.member "responses" (field "result" again) with
  | Some (Json.List rs) ->
    List.iter
      (fun r ->
        Alcotest.(check (option string))
          "warm batch hit" (Some "request")
          (cached_of (expect_ok r)))
      rs
  | _ -> Alcotest.fail "batch result has no responses");
  Serve.shutdown parallel;
  Serve.shutdown sequential

(* {2 Sweep via rewind matches the reference Sweep.run} *)

let test_sweep_matches_reference () =
  let s = Serve.create () in
  let resp =
    expect_ok
      (Serve.handle s
         (req {|{"op":"sweep","kernel":"dot-8","axis":"alus","values":[2,3,5]}|}))
  in
  let source =
    (List.find (fun (k : Kernels.t) -> k.Kernels.name = "dot-8") Kernels.all)
      .Kernels.source
  in
  let expected =
    Fpfa_core.Sweep.run ~source
      (Fpfa_core.Sweep.points Fpfa_core.Sweep.Alu_count [ 2; 3; 5 ])
  in
  let rows =
    match Json.member "rows" (field "result" resp) with
    | Some (Json.List rows) -> rows
    | _ -> Alcotest.fail "sweep result has no rows"
  in
  Alcotest.(check int) "row count" (List.length expected) (List.length rows);
  List.iter2
    (fun (row : Fpfa_core.Sweep.row) json ->
      let get name =
        match Json.member name json with
        | Some (Json.Int n) -> n
        | _ -> Alcotest.fail ("row missing " ^ name)
      in
      Alcotest.(check int) "cycles" row.Fpfa_core.Sweep.metrics.Mapping.Metrics.cycles
        (get "cycles");
      Alcotest.(check int) "levels" row.Fpfa_core.Sweep.metrics.Mapping.Metrics.levels
        (get "levels");
      Alcotest.(check int) "moves" row.Fpfa_core.Sweep.metrics.Mapping.Metrics.moves
        (get "moves"))
    expected rows;
  Serve.shutdown s

(* {2 Check through the daemon} *)

let test_check_clean_kernel () =
  let s = Serve.create () in
  let resp =
    expect_ok (Serve.handle s (req {|{"op":"check","kernel":"dct4"}|}))
  in
  (match Json.member "errors" (field "result" resp) with
  | Some (Json.Int 0) -> ()
  | other ->
    Alcotest.fail
      ("expected 0 errors, got "
      ^ match other with Some v -> Json.to_string v | None -> "nothing"));
  (* identical request: request-level hit with the same bytes *)
  let warm = expect_ok (Serve.handle s (req {|{"op":"check","kernel":"dct4"}|})) in
  Alcotest.(check (option string)) "check cached" (Some "request")
    (cached_of warm);
  Alcotest.(check string) "check bytes stable" (result_bytes resp)
    (result_bytes warm);
  Serve.shutdown s

(* {2 Cache control and stats} *)

let test_cache_control () =
  let s = Serve.create ~cache_size:8 () in
  ignore (expect_ok (Serve.handle s (req {|{"op":"compile","kernel":"dct4"}|})));
  let stats1 = expect_ok (Serve.handle s (req {|{"op":"stats"}|})) in
  let entries resp level =
    match
      Option.bind
        (Json.member "cache" (field "result" resp))
        (fun c -> Option.bind (Json.member level c) (Json.member "entries"))
    with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.fail "stats missing cache entries"
  in
  Alcotest.(check int) "request entry cached" 1 (entries stats1 "request");
  Alcotest.(check int) "mapping entry cached" 1 (entries stats1 "mapping");
  ignore (expect_ok (Serve.handle s (req {|{"op":"cache","action":"clear"}|})));
  let stats2 = expect_ok (Serve.handle s (req {|{"op":"stats"}|})) in
  Alcotest.(check int) "cleared request" 0 (entries stats2 "request");
  Alcotest.(check int) "cleared mapping" 0 (entries stats2 "mapping");
  let resized =
    expect_ok
      (Serve.handle s (req {|{"op":"cache","action":"resize","capacity":2}|}))
  in
  Alcotest.(check bool)
    "resize acknowledged" true
    (Json.member "capacity" (field "result" resized) = Some (Json.Int 2));
  Alcotest.(check bool)
    "bad action rejected" false
    (is_ok (Serve.handle s (req {|{"op":"cache","action":"defrost"}|})));
  Serve.shutdown s

let test_disk_cache_survives_restart () =
  let dir = Filename.temp_file "fpfa_serve" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () ->
      let a = Serve.create ~cache_dir:dir () in
      let cold =
        expect_ok (Serve.handle a (req {|{"op":"compile","kernel":"dct4"}|}))
      in
      Serve.shutdown a;
      (* a fresh daemon with an empty memory cache hits the disk store *)
      let b = Serve.create ~cache_dir:dir () in
      let warm =
        expect_ok (Serve.handle b (req {|{"op":"compile","kernel":"dct4"}|}))
      in
      Alcotest.(check (option string)) "disk hit" (Some "disk")
        (cached_of warm);
      Alcotest.(check string) "disk result identical" (result_bytes cold)
        (result_bytes warm);
      Serve.shutdown b)

(* {2 Incremental recompilation: the anchor-vote near-miss path} *)

(* Two independent loops: editing the gain constant changes only the
   second region's cone, so the first loop's [ss:]/[out:] anchors still
   vote for the cached compile. *)
let two_loop_src k =
  Printf.sprintf
    {|void main() {
  sum = 0;
  for (i = 0; i < 8; i = i + 1) {
    sum = sum + a[i] * c[i];
  }
  gain = 0;
  for (j = 0; j < 8; j = j + 1) {
    gain = gain + %d * b[j];
  }
}|}
    k

let compile_src ?id src =
  Json.Obj
    (("op", Json.Str "compile") :: ("source", Json.Str src)
    :: (match id with Some n -> [ ("id", Json.Int n) ] | None -> []))

let incr_stat stats name =
  match
    Option.bind
      (Json.member "incr" (field "result" stats))
      (Json.member name)
  with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.fail ("stats missing incr." ^ name)

let test_incremental_patch () =
  let s = Serve.create () in
  let uncached = Serve.create ~cache_size:0 () in
  ignore (expect_ok (Serve.handle s (compile_src (two_loop_src 3))));
  (* one-literal edit: misses every cache level, anchors find the
     ancestor, the dirty cone re-minimises *)
  let patched = expect_ok (Serve.handle s (compile_src (two_loop_src 5))) in
  let fresh = expect_ok (Serve.handle uncached (compile_src (two_loop_src 5))) in
  Alcotest.(check (option string)) "computed, not a cache hit" None
    (cached_of patched);
  Alcotest.(check (option string)) "patched resume" (Some "patched")
    (resumed_of patched);
  Alcotest.(check string) "patched result equals cold compile"
    (result_bytes fresh) (result_bytes patched);
  (* a second edit grafts against the patched entry (chained compiles) *)
  let patched2 = expect_ok (Serve.handle s (compile_src (two_loop_src 9))) in
  let fresh2 = expect_ok (Serve.handle uncached (compile_src (two_loop_src 9))) in
  Alcotest.(check (option string)) "chained patched resume" (Some "patched")
    (resumed_of patched2);
  Alcotest.(check string) "chained result equals cold compile"
    (result_bytes fresh2) (result_bytes patched2);
  let stats = expect_ok (Serve.handle s (req {|{"op":"stats"}|})) in
  Alcotest.(check int) "two patched compiles" 2 (incr_stat stats "patched");
  Alcotest.(check bool) "dirty nodes counted" true
    (incr_stat stats "dirty_nodes" > 0);
  Alcotest.(check int) "no fallbacks" 0 (incr_stat stats "fallback");
  (* dropping the whole second loop changes the region set: the diff
     refuses, the daemon falls back to a cold compile, and the answer is
     still right *)
  let chopped =
    {|void main() {
  sum = 0;
  for (i = 0; i < 8; i = i + 1) {
    sum = sum + a[i] * c[i];
  }
}|}
  in
  let fallback = expect_ok (Serve.handle s (compile_src chopped)) in
  let fallback_fresh = expect_ok (Serve.handle uncached (compile_src chopped)) in
  Alcotest.(check (option string)) "refused diff compiles cold" None
    (resumed_of fallback);
  Alcotest.(check string) "fallback result equals cold compile"
    (result_bytes fallback_fresh) (result_bytes fallback);
  let stats2 = expect_ok (Serve.handle s (req {|{"op":"stats"}|})) in
  Alcotest.(check bool) "fallback counted" true
    (incr_stat stats2 "fallback" >= 1);
  Serve.shutdown s;
  Serve.shutdown uncached

(* {2 Disk GC: the byte budget holds and evictions are counted} *)

let with_temp_dir f =
  let dir = Filename.temp_file "fpfa_serve" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter (fun x -> Sys.remove (Filename.concat dir x)) (Sys.readdir dir);
      Unix.rmdir dir
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let dir_bytes dir =
  Array.fold_left
    (fun acc f -> acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
    0 (Sys.readdir dir)

let test_disk_gc () =
  let kernels = [ "dct4"; "dot-8"; "fir-paper"; "saxpy-8" ] in
  let compile s k =
    ignore (expect_ok (Serve.handle s (req {|{"op":"compile","kernel":"%s"}|} k)))
  in
  (* measure entry sizes unbounded, then rerun under a two-entry budget *)
  let budget =
    with_temp_dir (fun dir ->
        let a = Serve.create ~cache_dir:dir () in
        List.iter (compile a) kernels;
        Serve.shutdown a;
        let largest =
          Array.fold_left
            (fun acc f ->
              max acc (Unix.stat (Filename.concat dir f)).Unix.st_size)
            0 (Sys.readdir dir)
        in
        2 * largest)
  in
  with_temp_dir (fun dir ->
      let b = Serve.create ~cache_dir:dir ~cache_disk_max:budget () in
      List.iter (compile b) kernels;
      Alcotest.(check bool) "disk store within budget" true
        (dir_bytes dir <= budget);
      let stats = expect_ok (Serve.handle b (req {|{"op":"stats"}|})) in
      (match Json.member "disk_evictions" (field "result" stats) with
      | Some (Json.Int n) ->
        Alcotest.(check bool) "evictions counted" true (n >= 1)
      | _ -> Alcotest.fail "stats missing disk_evictions");
      Serve.shutdown b;
      (* a restart under the same budget sweeps on startup and still
         serves: every kernel answers, from disk or recomputed *)
      let c = Serve.create ~cache_dir:dir ~cache_disk_max:budget () in
      List.iter (compile c) kernels;
      Alcotest.(check bool) "budget holds after restart" true
        (dir_bytes dir <= budget);
      Serve.shutdown c)

(* {2 The socket loop, end to end} *)

let test_socket_roundtrip () =
  let path = Filename.temp_file "fpfa_serve" ".sock" in
  Sys.remove path;
  (* The server loop runs on its own domain (fork is off-limits once
     pools have spawned domains); this domain plays the client. The
     daemon's state is only ever touched from the serving domain. *)
  let s = Serve.create () in
  let server =
    Domain.spawn (fun () ->
        try Serve.serve_socket s ~path with _ -> ())
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join server;
      Serve.shutdown s;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* wait for the listener *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let rec connect tries =
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> ()
        | exception Unix.Unix_error _ when tries > 0 ->
          Unix.sleepf 0.05;
          connect (tries - 1)
      in
      connect 100;
      let ic = Unix.in_channel_of_descr fd in
      let send line =
        let line = line ^ "\n" in
        ignore (Unix.write_substring fd line 0 (String.length line))
      in
      send {|{"op":"ping","id":1}|};
      send {|{"op":"compile","kernel":"dct4","id":2}|};
      send {|{"op":"shutdown","id":3}|};
      let l1 = Json.parse (input_line ic) in
      let l2 = Json.parse (input_line ic) in
      let l3 = Json.parse (input_line ic) in
      Alcotest.(check bool) "ping ok" true (is_ok l1);
      Alcotest.(check bool) "compile ok" true (is_ok l2);
      Alcotest.(check bool) "shutdown ok" true (is_ok l3);
      Unix.close fd)

(* Several client domains hammer one socket daemon with a mix of cold,
   warm, and near-miss compiles. The select loop must keep the streams
   apart: every response line parses, ids come back on the connection
   that sent them in order, and payloads are byte-identical to a
   cache-off daemon answering sequentially. *)
let test_socket_stress () =
  let n_clients = 4 in
  let path = Filename.temp_file "fpfa_serve" ".sock" in
  Sys.remove path;
  (* expected payloads, computed sequentially up front *)
  let reference = Serve.create ~cache_size:0 () in
  let expect_kernel k =
    result_bytes
      (expect_ok (Serve.handle reference (req {|{"op":"compile","kernel":"%s"}|} k)))
  in
  let dct4_bytes = expect_kernel "dct4" in
  let dot_bytes = expect_kernel "dot-8" in
  let variant_bytes =
    List.init n_clients (fun c ->
        result_bytes
          (expect_ok (Serve.handle reference (compile_src (two_loop_src (c + 1))))))
  in
  Serve.shutdown reference;
  let s = Serve.create () in
  let server =
    Domain.spawn (fun () -> try Serve.serve_socket s ~path with _ -> ())
  in
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec go tries =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> ()
      | exception Unix.Unix_error _ when tries > 0 ->
        Unix.sleepf 0.05;
        go (tries - 1)
    in
    go 100;
    fd
  in
  let send fd j =
    let line = Json.to_string j ^ "\n" in
    ignore (Unix.write_substring fd line 0 (String.length line))
  in
  (* Client [c] pipelines four requests — cold/warm kernel compiles plus
     its own near-miss source — then reads its four response lines. *)
  let client c =
    let fd = connect () in
    let ic = Unix.in_channel_of_descr fd in
    let reqs =
      [
        req {|{"op":"ping","id":%d}|} (100 * c);
        req {|{"op":"compile","kernel":"dct4","id":%d}|} ((100 * c) + 1);
        compile_src ~id:((100 * c) + 2) (two_loop_src c);
        req {|{"op":"compile","kernel":"dot-8","id":%d}|} ((100 * c) + 3);
      ]
    in
    List.iter (send fd) reqs;
    let resps = List.map (fun _ -> Json.parse (input_line ic)) reqs in
    Unix.close fd;
    resps
  in
  Fun.protect
    ~finally:(fun () ->
      Domain.join server;
      Serve.shutdown s;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let clients =
        List.init n_clients (fun c -> Domain.spawn (fun () -> client (c + 1)))
      in
      let results = List.map Domain.join clients in
      (* stop the serving loop before checking, so a failure can't hang *)
      let fd = connect () in
      send fd (req {|{"op":"shutdown"}|});
      ignore (input_line (Unix.in_channel_of_descr fd));
      Unix.close fd;
      List.iteri
        (fun i resps ->
          let c = i + 1 in
          List.iteri
            (fun k resp ->
              let resp = expect_ok resp in
              Alcotest.(check bool)
                (Printf.sprintf "client %d id %d correlated" c k)
                true
                (field "id" resp = Json.Int ((100 * c) + k)))
            resps;
          match List.map (fun r -> result_bytes r) resps with
          | [ _ping; dct4; variant; dot ] ->
            Alcotest.(check string)
              (Printf.sprintf "client %d dct4 bytes" c)
              dct4_bytes dct4;
            Alcotest.(check string)
              (Printf.sprintf "client %d near-miss bytes" c)
              (List.nth variant_bytes (c - 1))
              variant;
            Alcotest.(check string)
              (Printf.sprintf "client %d dot-8 bytes" c)
              dot_bytes dot
          | _ -> Alcotest.fail "wrong response count")
        results)

let suite =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basics;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru capacity zero" `Quick test_lru_capacity_zero;
    Alcotest.test_case "lru set capacity" `Quick test_lru_set_capacity;
    Alcotest.test_case "ping and errors" `Quick test_serve_ping_and_errors;
    Alcotest.test_case "corpus hit equals miss" `Quick
      test_corpus_hit_equals_miss;
    Alcotest.test_case "mapping-level hit" `Quick test_mapping_level_hit;
    Alcotest.test_case "bitopt keys cache" `Quick test_bitopt_keys_cache;
    Alcotest.test_case "width keys cache" `Quick test_width_keys_cache;
    Alcotest.test_case "near-miss resumes" `Quick test_near_miss_resumes;
    Alcotest.test_case "batch hammer" `Quick test_batch_hammer_matches_sequential;
    Alcotest.test_case "sweep matches reference" `Quick
      test_sweep_matches_reference;
    Alcotest.test_case "check via daemon" `Quick test_check_clean_kernel;
    Alcotest.test_case "cache control" `Quick test_cache_control;
    Alcotest.test_case "disk cache" `Quick test_disk_cache_survives_restart;
    Alcotest.test_case "incremental patch" `Quick test_incremental_patch;
    Alcotest.test_case "disk gc" `Quick test_disk_gc;
    Alcotest.test_case "socket roundtrip" `Quick test_socket_roundtrip;
    Alcotest.test_case "socket stress" `Quick test_socket_stress;
  ]
