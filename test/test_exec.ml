(* Tests of Fpfa_exec.Pool — ordering, fast paths, exception semantics,
   pool reuse — and of the parallel determinism contract: a pool-driven
   batch must produce exactly the sequential results (mapped jobs,
   metrics, obs counters, check diagnostics, sweep rows). *)

module Pool = Fpfa_exec.Pool
module Obs = Fpfa_obs.Obs
module Flow = Fpfa_core.Flow
module Sweep = Fpfa_core.Sweep
module Kernels = Fpfa_kernels.Kernels
module Q = QCheck

(* ------------------------------ pool ------------------------------- *)

let test_empty () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check (list int)) "empty batch" [] (Pool.map pool succ [])

let test_single_in_caller () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let self = Domain.self () in
  let ran_in = ref None in
  let r =
    Pool.map pool
      (fun x ->
        ran_in := Some (Domain.self ());
        x + 1)
      [ 41 ]
  in
  Alcotest.(check (list int)) "single result" [ 42 ] r;
  Alcotest.(check bool) "ran in the calling domain" true
    (!ran_in = Some self)

let test_jobs1_no_spawn () =
  let self = Domain.self () in
  let doms = Pool.map_ordered ~jobs:1 (fun _ -> Domain.self ()) [ 1; 2; 3 ] in
  Alcotest.(check bool) "jobs=1 stays in the calling domain" true
    (List.for_all (fun d -> d = self) doms)

let test_fewer_items_than_workers () =
  Pool.with_pool ~jobs:8 @@ fun pool ->
  Alcotest.(check (list int)) "3 items on an 8-wide pool" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "input order" (List.map (fun x -> x * x) xs)
    (Pool.map_ordered ~jobs:4 (fun x -> x * x) xs)

let test_exception_lowest_index () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let f i = if i = 3 || i = 7 then failwith (Printf.sprintf "boom %d" i) else i in
  (match Pool.map pool f (List.init 10 Fun.id) with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
    (* two items fail; the re-raised one must be the lowest-index one,
       like a sequential List.map's first failure *)
    Alcotest.(check string) "lowest-index failure" "boom 3" msg);
  (* surviving results were dropped cleanly: the pool serves the next
     batch as if nothing happened *)
  Alcotest.(check (list int)) "pool reusable after a failing batch"
    [ 10; 20; 30 ]
    (Pool.map pool (fun x -> 10 * x) [ 1; 2; 3 ])

let test_many_batches_one_pool () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  for round = 1 to 5 do
    let xs = List.init (10 * round) (fun i -> i + round) in
    Alcotest.(check (list int))
      (Printf.sprintf "batch %d" round)
      (List.map succ xs)
      (Pool.map pool succ xs)
  done

let qcheck_map_ordered =
  QCheck_alcotest.to_alcotest
    (Q.Test.make ~count:100 ~name:"map_ordered = List.map"
       (Q.pair (Q.int_range 1 8) (Q.list Q.small_int))
       (fun (jobs, xs) ->
         let f x = (x * 31) + 7 in
         Pool.map_ordered ~jobs f xs = List.map f xs))

(* --------------------- domain-safe observability -------------------- *)

(* Drive obs from several domains at once and from a deterministic
   baseline: commutative counter updates must total exactly, and
   record_max must land on the true maximum, whatever the schedule. *)
let with_quiet_obs f =
  Obs.set_clock (fun () -> 0.0);
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ();
      Obs.set_clock Sys.time)
    f

let test_counter_hammer () =
  with_quiet_obs @@ fun () ->
  let c = Obs.counter "test.exec.hammer" in
  let m = Obs.counter "test.exec.hwm" in
  let xs = List.init 1000 Fun.id in
  ignore
    (Pool.map_ordered ~jobs:4
       (fun i ->
         Obs.incr c;
         Obs.add c 2;
         Obs.record_max m i)
       xs);
  Alcotest.(check int) "adds total exactly" 3000 (Obs.value c);
  Alcotest.(check int) "high-water mark" 999 (Obs.value m)

let test_parallel_spans_all_recorded () =
  with_quiet_obs @@ fun () ->
  ignore
    (Pool.map_ordered ~jobs:4
       (fun i -> Obs.span "item" (fun () -> i))
       (List.init 50 Fun.id));
  let spans = List.filter (fun s -> s.Obs.sname = "item") (Obs.spans ()) in
  Alcotest.(check int) "one span per item" 50 (List.length spans);
  let sids = List.map (fun s -> s.Obs.sid) spans in
  Alcotest.(check int) "span ids unique" 50
    (List.length (List.sort_uniq compare sids))

(* ------------------------- determinism suite ------------------------ *)

(* The contract the CLI's -j flag advertises: identical observable
   output. Run each batch sequentially and on a 4-wide pool, from the
   same obs baseline, and require equality of everything a user can
   drain afterwards. *)

let corpus_batch jobs =
  with_quiet_obs @@ fun () ->
  let rows =
    Pool.map_ordered ~jobs
      (fun (k : Kernels.t) ->
        let r = Baseline.map_source Baseline.paper k.Kernels.source in
        (k.Kernels.name, r.Flow.job, r.Flow.metrics))
      Kernels.all
  in
  (rows, Obs.counters ())

let test_corpus_deterministic () =
  let rows1, counters1 = corpus_batch 1 in
  let rows4, counters4 = corpus_batch 4 in
  Alcotest.(check bool) "jobs and metrics identical" true (rows1 = rows4);
  Alcotest.(check bool) "obs counters identical" true (counters1 = counters4)

let check_batch jobs =
  let module Diag = Fpfa_diag.Diag in
  Pool.map_ordered ~jobs
    (fun (k : Kernels.t) ->
      let r = Flow.map_source k.Kernels.source in
      ( k.Kernels.name,
        Diag.sort
          (Fpfa_analysis.Verify.structure r.Flow.raw_graph
          @ Fpfa_analysis.Verify.all r.Flow.graph
          @ Fpfa_analysis.Lint.run r.Flow.graph) ))
    Kernels.all

let test_check_deterministic () =
  Alcotest.(check bool) "check diagnostics identical" true
    (check_batch 1 = check_batch 4)

let test_sweep_deterministic () =
  let k = Kernels.fir ~taps:16 in
  let points = Sweep.default_points () in
  let run pool =
    Sweep.run ?pool ~verify:true ~memory_init:k.Kernels.inputs
      ~source:k.Kernels.source points
  in
  let seq = run None in
  let par = Pool.with_pool ~jobs:4 (fun pool -> run (Some pool)) in
  Alcotest.(check bool) "sweep rows identical" true (seq = par);
  Alcotest.(check bool) "every point verified" true
    (List.for_all (fun r -> r.Sweep.verified = Some true) seq)

let suite =
  [
    Alcotest.test_case "empty batch" `Quick test_empty;
    Alcotest.test_case "single item in caller" `Quick test_single_in_caller;
    Alcotest.test_case "jobs=1 spawns nothing" `Quick test_jobs1_no_spawn;
    Alcotest.test_case "fewer items than workers" `Quick
      test_fewer_items_than_workers;
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "lowest-index exception" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "many batches, one pool" `Quick
      test_many_batches_one_pool;
    qcheck_map_ordered;
    Alcotest.test_case "counter hammer" `Quick test_counter_hammer;
    Alcotest.test_case "parallel spans recorded" `Quick
      test_parallel_spans_all_recorded;
    Alcotest.test_case "corpus deterministic" `Quick test_corpus_deterministic;
    Alcotest.test_case "check deterministic" `Quick test_check_deterministic;
    Alcotest.test_case "sweep deterministic" `Quick test_sweep_deterministic;
  ]
