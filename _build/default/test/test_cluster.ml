(* Unit + property tests for phase 1 (clustering). *)

module G = Cdfg.Graph
module Arch = Fpfa_arch.Arch
module Cluster = Mapping.Cluster

let prepared source =
  let g = Cdfg.Builder.build_program source in
  ignore (Transform.Simplify.minimize g);
  g

let test_fir_clusters () =
  let g = prepared Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source in
  let t = Cluster.run g in
  Cluster.validate t Arch.paper_alu;
  (* 5 multiply(+add) clusters for the taps/tree + the pass-through storing
     the constant 5 into i: 6-8 clusters depending on fusion. *)
  let n = Array.length t.Cluster.clusters in
  Alcotest.(check bool) "cluster count plausible" true (n >= 6 && n <= 9);
  (* every value op is in exactly one cluster *)
  let op_count =
    G.fold g ~init:0 ~f:(fun acc n ->
        match n.G.kind with
        | G.Binop _ | G.Unop _ | G.Mux -> acc + 1
        | _ -> acc)
  in
  let clustered_ops =
    Array.to_list t.Cluster.clusters
    |> List.concat_map (fun c -> c.Cluster.ops)
  in
  Alcotest.(check int) "partition covers all ops" op_count
    (List.length clustered_ops);
  Alcotest.(check int) "no op twice" op_count
    (List.length (Fpfa_util.Listx.uniq compare clustered_ops))

let test_caps_respected () =
  let g = prepared Fpfa_kernels.Kernels.(matmul ~n:3).Fpfa_kernels.Kernels.source in
  let t = Cluster.run g in
  Cluster.validate t Arch.paper_alu;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "at most 3 ops" true (List.length c.Cluster.ops <= 3);
      Alcotest.(check bool) "at most 4 inputs" true
        (List.length c.Cluster.cinputs <= 4);
      let mults =
        List.length
          (List.filter
             (fun op ->
               match G.kind g op with
               | G.Binop b -> Cdfg.Op.is_multiplier_class b
               | _ -> false)
             c.Cluster.ops)
      in
      Alcotest.(check bool) "at most one multiplier" true (mults <= 1))
    t.Cluster.clusters

let test_unit_clusters_are_singletons () =
  let g = prepared Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source in
  let t = Cluster.unit_clusters g in
  Cluster.validate t Arch.unit_alu;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "0 or 1 op" true (List.length c.Cluster.ops <= 1))
    t.Cluster.clusters

let test_pass_through_for_const_store () =
  let g = prepared "void main() { x = 7; }" in
  let t = Cluster.run g in
  Alcotest.(check int) "one pass-through cluster" 1
    (Array.length t.Cluster.clusters);
  let c = t.Cluster.clusters.(0) in
  Alcotest.(check (list int)) "no ops" [] c.Cluster.ops;
  Alcotest.(check int) "one store" 1 (List.length c.Cluster.stores)

let test_one_store_per_cluster () =
  (* two stores of the same fetched value get one pass-through cluster
     each: multi-store clusters could interleave in a token chain and
     deadlock the schedule *)
  let g = prepared "void main() { x = a[0]; y = a[0]; }" in
  let t = Cluster.run g in
  Alcotest.(check int) "two clusters" 2 (Array.length t.Cluster.clusters);
  Array.iter
    (fun c ->
      Alcotest.(check int) "one store each" 1 (List.length c.Cluster.stores))
    t.Cluster.clusters

let test_store_attaches_to_producer () =
  let g = prepared "void main() { x = a[0] * a[1]; }" in
  let t = Cluster.run g in
  Alcotest.(check int) "one cluster" 1 (Array.length t.Cluster.clusters);
  let c = t.Cluster.clusters.(0) in
  Alcotest.(check int) "multiply inside" 1 (List.length c.Cluster.ops);
  Alcotest.(check int) "store attached" 1 (List.length c.Cluster.stores)

let test_edges_respect_dataflow () =
  let g = prepared "void main() { x = a[0] * a[1]; y = x + 1; }" in
  let t = Cluster.run g in
  (* after forwarding x flows straight into the add; there must be an edge
     from the multiply cluster to the add cluster *)
  Alcotest.(check bool) "dependency edge exists" true
    (List.exists (fun e -> e.Cluster.weight = 1) t.Cluster.edges)

let test_anti_dependence_weight_zero () =
  (* y reads a[0] while a[0] is overwritten: consumer cluster -> storer
     cluster with weight 0 *)
  let g = prepared "void main() { y = a[0] + 1; a[0] = z + 2; }" in
  let t = Cluster.run g in
  Alcotest.(check bool) "weight-0 edge present" true
    (List.exists (fun e -> e.Cluster.weight = 0) t.Cluster.edges)

let test_delete_cluster () =
  let f =
    List.hd
      (Cfront.Parser.parse_program "void main() { int t; t = a[0]; b[0] = t; }")
  in
  let g = Cdfg.Builder.build_func ~delete_locals:true f in
  ignore (Transform.Simplify.minimize g);
  let t = Cluster.run g in
  let del_clusters =
    Array.to_list t.Cluster.clusters
    |> List.filter (fun c -> c.Cluster.deletes <> [])
  in
  Alcotest.(check int) "one delete cluster" 1 (List.length del_clusters);
  Alcotest.(check bool) "no ALU used" true
    ((List.hd del_clusters).Cluster.root = None)

let test_sarkar_fuses () =
  let g = prepared Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source in
  let greedy = Cluster.run g in
  let sarkar = Cluster.sarkar g in
  Cluster.validate sarkar Arch.paper_alu;
  (* both must cover the same ops *)
  let ops t =
    Array.to_list t.Cluster.clusters
    |> List.concat_map (fun c -> c.Cluster.ops)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "same op partition domain" (ops greedy) (ops sarkar)

let test_legalize_rejects_dynamic_offsets () =
  let g = Cdfg.Builder.build_program "void main() { x = a[u]; }" in
  match Cluster.run g with
  | exception Mapping.Legalize.Unmappable _ -> ()
  | _ -> Alcotest.fail "dynamic offset accepted"

let test_legalize_requires_stored_outputs () =
  (* a named output that is never stored is rejected *)
  let g = G.create "t" in
  let c = G.add g (G.Const 1) [] in
  G.set_output g "return" c;
  match Mapping.Legalize.check g with
  | exception Mapping.Legalize.Unmappable _ -> ()
  | _ -> Alcotest.fail "unstored output accepted"

(* Property: on random graphs, clustering is a legal partition and the
   cluster DAG is acyclic for both algorithms. *)
let clustering_is_legal =
  QCheck.Test.make ~name:"clustering legal on random graphs" ~count:100
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let g = Fpfa_kernels.Random_graph.generate ~seed ~ops:60 () in
      let check t =
        Cluster.validate t Arch.paper_alu;
        true
      in
      check (Cluster.run g)
      && check (Cluster.sarkar g)
      &&
      (Cluster.validate (Cluster.unit_clusters g) Arch.unit_alu;
       true))

let suite =
  [
    Alcotest.test_case "fir clusters" `Quick test_fir_clusters;
    Alcotest.test_case "caps respected" `Quick test_caps_respected;
    Alcotest.test_case "unit clusters" `Quick test_unit_clusters_are_singletons;
    Alcotest.test_case "const pass-through" `Quick test_pass_through_for_const_store;
    Alcotest.test_case "one store per cluster" `Quick test_one_store_per_cluster;
    Alcotest.test_case "store attaches" `Quick test_store_attaches_to_producer;
    Alcotest.test_case "dataflow edges" `Quick test_edges_respect_dataflow;
    Alcotest.test_case "anti-dep weight 0" `Quick test_anti_dependence_weight_zero;
    Alcotest.test_case "delete cluster" `Quick test_delete_cluster;
    Alcotest.test_case "sarkar" `Quick test_sarkar_fuses;
    Alcotest.test_case "dynamic offsets" `Quick test_legalize_rejects_dynamic_offsets;
    Alcotest.test_case "stored outputs" `Quick test_legalize_requires_stored_outputs;
    QCheck_alcotest.to_alcotest clustering_is_legal;
  ]
