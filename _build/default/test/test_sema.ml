(* Unit tests for semantic analysis. *)

module Sema = Cfront.Sema

let analyze source =
  match Cfront.Parser.parse_program source with
  | [ f ] -> Sema.check_func f
  | _ -> Alcotest.fail "expected one function"

let expect_error source =
  match analyze source with
  | exception Sema.Error _ -> ()
  | _ -> Alcotest.fail ("expected semantic error: " ^ source)

let kind_of env name =
  match Sema.find env name with
  | Some sym -> sym.Sema.kind
  | None -> Alcotest.fail ("symbol not found: " ^ name)

let test_implicit_symbols () =
  let env = analyze "void main() { sum = a[0] + b; }" in
  Alcotest.(check bool) "sum scalar" true (kind_of env "sum" = Sema.Scalar);
  Alcotest.(check bool) "a array" true (kind_of env "a" = Sema.Array None);
  Alcotest.(check bool) "b scalar" true (kind_of env "b" = Sema.Scalar);
  let sum = Option.get (Sema.find env "sum") in
  Alcotest.(check bool) "implicit" true sum.Sema.implicit

let test_declared_symbols () =
  let env = analyze "void main() { int x = 1; int a[5]; a[0] = x; }" in
  Alcotest.(check bool) "x scalar" true (kind_of env "x" = Sema.Scalar);
  Alcotest.(check bool) "a sized" true (kind_of env "a" = Sema.Array (Some 5));
  let x = Option.get (Sema.find env "x") in
  Alcotest.(check bool) "not implicit" false x.Sema.implicit

let test_implicit_then_declared () =
  (* A use before the declaration upgrades to the declared size. *)
  let env = analyze "void main() { a[2] = 1; int a[5]; }" in
  Alcotest.(check bool) "upgraded" true (kind_of env "a" = Sema.Array (Some 5))

let test_params_are_scalars () =
  match Cfront.Parser.parse_program "int f(int p) { return p + 1; }" with
  | [ f ] ->
    let env = Sema.check_func f in
    Alcotest.(check bool) "param scalar" true (kind_of env "p" = Sema.Scalar)
  | _ -> Alcotest.fail "one function"

let test_scalar_array_conflicts () =
  expect_error "void main() { x = 1; x[0] = 2; }";
  expect_error "void main() { x[0] = 2; x = 1; }";
  expect_error "void main() { int a[3]; a = 1; }"

let test_duplicate_declaration () =
  expect_error "void main() { int x; int x; }";
  expect_error "void main() { int x; int x[3]; }"

let test_array_size_positive () =
  expect_error "void main() { int a[0]; a[0] = 1; }"

let test_intrinsics () =
  ignore (analyze "void main() { x = min(1, 2) + max(3, 4) + abs(-5); }");
  expect_error "void main() { x = foo(1); }";
  expect_error "void main() { x = min(1); }";
  expect_error "void main() { x = abs(1, 2); }"

let test_return_checks () =
  expect_error "void main() { return 1; }";
  (match Cfront.Parser.parse_program "int f() { return; }" with
  | [ f ] -> (
    match Sema.check_func f with
    | exception Sema.Error _ -> ()
    | _ -> Alcotest.fail "int function must return a value")
  | _ -> Alcotest.fail "one function");
  ignore (analyze "void main() { return; }")

let test_env_queries () =
  let env = analyze "void main() { s = a[0] + b[1]; t = s; }" in
  Alcotest.(check int) "arrays" 2 (List.length (Sema.arrays env));
  Alcotest.(check int) "scalars" 2 (List.length (Sema.scalars env));
  (* env is sorted by name *)
  let names = List.map (fun (s : Sema.symbol) -> s.Sema.name) env in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

let test_program_duplicates () =
  match Cfront.Parser.parse_program "void f() { x = 1; } void f() { y = 2; }" with
  | p -> (
    match Sema.check_program p with
    | exception Sema.Error _ -> ()
    | _ -> Alcotest.fail "duplicate function names")
  | exception _ -> Alcotest.fail "should parse"

let suite =
  [
    Alcotest.test_case "implicit symbols" `Quick test_implicit_symbols;
    Alcotest.test_case "declared symbols" `Quick test_declared_symbols;
    Alcotest.test_case "implicit then declared" `Quick test_implicit_then_declared;
    Alcotest.test_case "params" `Quick test_params_are_scalars;
    Alcotest.test_case "scalar/array conflict" `Quick test_scalar_array_conflicts;
    Alcotest.test_case "duplicate decl" `Quick test_duplicate_declaration;
    Alcotest.test_case "array size" `Quick test_array_size_positive;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "return checks" `Quick test_return_checks;
    Alcotest.test_case "env queries" `Quick test_env_queries;
    Alcotest.test_case "duplicate functions" `Quick test_program_duplicates;
  ]
