(* Unit tests for the reference interpreter. *)

module Interp = Cfront.Interp

let run ?array_init ?scalar_init source =
  Interp.run_main ?array_init ?scalar_init (Cfront.Parser.parse_program source)

let scalar state name =
  match List.assoc_opt name state.Interp.scalars with
  | Some v -> v
  | None -> Alcotest.fail ("no scalar " ^ name)

let array state name =
  match List.assoc_opt name state.Interp.arrays with
  | Some arr -> Array.to_list arr
  | None -> Alcotest.fail ("no array " ^ name)

let test_arithmetic () =
  let st = run "void main() { x = 2 + 3 * 4 - 1; y = (10 - 4) / 3; }" in
  Alcotest.(check int) "x" 13 (scalar st "x");
  Alcotest.(check int) "y" 2 (scalar st "y")

let test_total_division () =
  let st = run "void main() { a = 7 / 0; b = 7 % 0; c = 1 << 100; d = 1 >> (-1); }" in
  Alcotest.(check int) "div by zero is 0" 0 (scalar st "a");
  Alcotest.(check int) "mod by zero is 0" 0 (scalar st "b");
  Alcotest.(check int) "oversized shift is 0" 0 (scalar st "c");
  Alcotest.(check int) "negative shift is 0" 0 (scalar st "d")

let test_comparisons_yield_01 () =
  let st = run "void main() { a = 3 < 5; b = 3 > 5; c = !7; d = !!7; }" in
  Alcotest.(check int) "lt" 1 (scalar st "a");
  Alcotest.(check int) "gt" 0 (scalar st "b");
  Alcotest.(check int) "lnot" 0 (scalar st "c");
  Alcotest.(check int) "double lnot" 1 (scalar st "d")

let test_short_circuit () =
  (* && short-circuits: the division by zero on the right is never reached,
     and even if it were, division is total. The point is the 0/1 result. *)
  let st = run "void main() { a = 0 && 5; b = 2 && 5; c = 0 || 0; d = 0 || 9; }" in
  Alcotest.(check (list int)) "logic" [ 0; 1; 0; 1 ]
    [ scalar st "a"; scalar st "b"; scalar st "c"; scalar st "d" ]

let test_while_loop () =
  let st = run "void main() { s = 0; i = 0; while (i < 10) { s = s + i; i++; } }" in
  Alcotest.(check int) "sum 0..9" 45 (scalar st "s");
  Alcotest.(check int) "i" 10 (scalar st "i")

let test_if_else () =
  let st = run "void main() { x = 7; if (x > 5) { y = 1; } else { y = 2; } }" in
  Alcotest.(check int) "then branch" 1 (scalar st "y")

let test_arrays_grow_and_bounds () =
  let st = run "void main() { a[3] = 9; x = a[0] + a[3]; }" in
  Alcotest.(check (list int)) "grown with zeros" [ 0; 0; 0; 9 ] (array st "a");
  Alcotest.(check int) "read" 9 (scalar st "x")

let test_declared_bounds_enforced () =
  (match run "void main() { int a[2]; a[5] = 1; }" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "out of bounds write");
  match run "void main() { x = a[-1]; }" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "negative index"

let test_uninitialised_reads_zero () =
  let st = run "void main() { int x; y = x + q; }" in
  Alcotest.(check int) "decl without init is 0" 0 (scalar st "x");
  Alcotest.(check int) "implicit reads 0" 0 (scalar st "y")

let test_inputs () =
  let st =
    run ~array_init:[ ("a", [| 5; 6 |]) ] ~scalar_init:[ ("k", 10) ]
      "void main() { x = a[0] + a[1] + k; }"
  in
  Alcotest.(check int) "seeded" 21 (scalar st "x")

let test_return_value () =
  match Cfront.Parser.parse_program "int f() { return 6 * 7; }" with
  | [ f ] ->
    let st = Interp.run f in
    Alcotest.(check (option int)) "return" (Some 42) st.Interp.return_value
  | _ -> Alcotest.fail "one function"

let test_args () =
  match Cfront.Parser.parse_program "int f(int a, int b) { return a - b; }" with
  | [ f ] ->
    let st = Interp.run ~args:[ 10; 4 ] f in
    Alcotest.(check (option int)) "args bound" (Some 6) st.Interp.return_value
  | _ -> Alcotest.fail "one function"

let test_fuel () =
  match run ~array_init:[] "void main() { x = 1; while (x) { x = 1; } }" with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_intrinsics () =
  let st = run "void main() { a = abs(-4); b = min(3, -2); c = max(3, -2); }" in
  Alcotest.(check (list int)) "intrinsics" [ 4; -2; 3 ]
    [ scalar st "a"; scalar st "b"; scalar st "c" ]

let test_fir_golden () =
  let k = Fpfa_kernels.Kernels.fir_paper in
  let st = Interp.run_main ~array_init:k.Fpfa_kernels.Kernels.inputs
      (Cfront.Parser.parse_program k.Fpfa_kernels.Kernels.source)
  in
  let a = List.assoc "a" k.Fpfa_kernels.Kernels.inputs in
  let c = List.assoc "c" k.Fpfa_kernels.Kernels.inputs in
  let expected = ref 0 in
  Array.iteri (fun i ai -> expected := !expected + (ai * c.(i))) a;
  Alcotest.(check int) "fir sum" !expected (scalar st "sum")

let test_equal_state () =
  let st1 = run "void main() { x = 1; a[0] = 2; }" in
  let st2 = run "void main() { a[0] = 2; x = 1; }" in
  Alcotest.(check bool) "equal" true (Interp.equal_state st1 st2);
  let st3 = run "void main() { x = 2; a[0] = 2; }" in
  Alcotest.(check bool) "not equal" false (Interp.equal_state st1 st3)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "total division" `Quick test_total_division;
    Alcotest.test_case "comparisons" `Quick test_comparisons_yield_01;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "while loop" `Quick test_while_loop;
    Alcotest.test_case "if/else" `Quick test_if_else;
    Alcotest.test_case "arrays grow" `Quick test_arrays_grow_and_bounds;
    Alcotest.test_case "declared bounds" `Quick test_declared_bounds_enforced;
    Alcotest.test_case "uninitialised is 0" `Quick test_uninitialised_reads_zero;
    Alcotest.test_case "inputs" `Quick test_inputs;
    Alcotest.test_case "return value" `Quick test_return_value;
    Alcotest.test_case "arguments" `Quick test_args;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "fir golden" `Quick test_fir_golden;
    Alcotest.test_case "equal_state" `Quick test_equal_state;
  ]
