(* Unit tests for loop mapping by configuration reuse (paper Section VII
   future work). *)

module Loop_flow = Fpfa_core.Loop_flow
module Parametric = Mapping.Parametric

let inputs =
  [
    ("x", Array.init 16 (fun i -> i - 5));
    ("y", Array.init 16 (fun i -> 2 * i));
    ("a", Array.init 16 (fun i -> i + 1));
    ("c", Array.init 16 (fun i -> 10 * (i + 1)));
  ]

let expect_looped source =
  match Loop_flow.map_source source with
  | Loop_flow.Looped staged -> staged
  | Loop_flow.Unrolled (_, reason) ->
    Alcotest.fail ("expected looped mapping, fell back: " ^ reason)

let expect_fallback source =
  match Loop_flow.map_source source with
  | Loop_flow.Unrolled (_, reason) -> reason
  | Loop_flow.Looped _ -> Alcotest.fail "expected fallback"

let check_verified source =
  let outcome = Loop_flow.map_source source in
  Alcotest.(check bool) "verifies" true
    (Loop_flow.verify ~memory_init:inputs source outcome)

let test_elementwise_loops_map () =
  let staged =
    expect_looped
      "void main() { for (i = 0; i < 16; i++) { out[i] = 3 * x[i] + 1; } }"
  in
  (match Loop_flow.loops staged with
  | [ l ] ->
    Alcotest.(check int) "16 trips" 16 l.Loop_flow.trips;
    Alcotest.(check bool) "has strides" true
      (Parametric.stride_count l.Loop_flow.body > 0)
  | _ -> Alcotest.fail "expected one loop segment");
  check_verified
    "void main() { for (i = 0; i < 16; i++) { out[i] = 3 * x[i] + 1; } }"

let test_reduction_loops_map () =
  (* loop-carried accumulator travels through its memory cell *)
  let source =
    "void main() { sum = 0; for (i = 0; i < 16; i++) { sum = sum + a[i] * c[i]; } }"
  in
  ignore (expect_looped source);
  let outcome = Loop_flow.map_source source in
  Alcotest.(check bool) "verifies" true
    (Loop_flow.verify ~memory_init:inputs source outcome);
  (* the final memory really holds the dot product *)
  match Loop_flow.map_source source with
  | Loop_flow.Looped staged ->
    let final = Loop_flow.run ~memory_init:inputs staged in
    let expected = ref 0 in
    let a = List.assoc "a" inputs and c = List.assoc "c" inputs in
    Array.iteri (fun i ai -> expected := !expected + (ai * c.(i))) a;
    Alcotest.(check (option (list int))) "sum" (Some [ !expected ])
      (Option.map Array.to_list (List.assoc_opt "sum" final))
  | Loop_flow.Unrolled _ -> Alcotest.fail "should loop"

let test_linear_counter_use_maps () =
  check_verified
    "void main() { for (i = 0; i < 12; i++) { out[i] = x[i] * 2 + i; } }";
  ignore
    (expect_looped
       "void main() { for (i = 0; i < 12; i++) { out[i] = x[i] * 2 + i; } }")

let test_strided_access_maps () =
  ignore
    (expect_looped
       "void main() { for (i = 0; i < 8; i++) { out[i] = x[2 * i]; } }");
  check_verified
    "void main() { for (i = 0; i < 8; i++) { out[i] = x[2 * i]; } }"

let test_nonlinear_counter_falls_back () =
  let reason =
    expect_fallback
      "void main() { for (i = 0; i < 12; i++) { out[i] = i * i; } }"
  in
  Alcotest.(check bool) "reason mentions validation or isomorphism" true
    (String.length reason > 0);
  check_verified "void main() { for (i = 0; i < 12; i++) { out[i] = i * i; } }"

let test_no_loop_falls_back () =
  let reason = expect_fallback "void main() { x = a[0] + a[1]; }" in
  Alcotest.(check bool) "mentions no loop" true
    (String.length reason > 0)

let test_small_trip_falls_back () =
  ignore
    (expect_fallback
       "void main() { for (i = 0; i < 2; i++) { out[i] = x[i]; } }");
  check_verified "void main() { for (i = 0; i < 2; i++) { out[i] = x[i]; } }"

let test_counter_written_in_body_falls_back () =
  ignore
    (expect_fallback
       "void main() { i = 0; while (i < 8) { out[i] = x[i]; i = i + 2; } }")

let test_prologue_epilogue_effects () =
  let source =
    "void main() { base = 100; for (i = 0; i < 8; i++) { out[i] = base + x[i]; } done_flag = 1; }"
  in
  let staged = expect_looped source in
  (* straight prologue, loop, straight epilogue *)
  Alcotest.(check int) "three segments" 3 (List.length staged.Loop_flow.segments);
  Alcotest.(check int) "two straight segments" 2
    (List.length (Loop_flow.straights staged));
  let final = Loop_flow.run ~memory_init:inputs staged in
  Alcotest.(check (option (list int))) "epilogue ran" (Some [ 1 ])
    (Option.map Array.to_list (List.assoc_opt "done_flag" final));
  Alcotest.(check (option (list int))) "counter final value" (Some [ 8 ])
    (Option.map Array.to_list (List.assoc_opt "i" final));
  check_verified source

let test_costs_favour_config_size () =
  match
    Loop_flow.compare_costs
      "void main() { for (i = 0; i < 16; i++) { out[i] = 3 * x[i] + 1; } }"
  with
  | Some c ->
    Alcotest.(check bool) "config shrinks" true
      (c.Loop_flow.looped_config_words < c.Loop_flow.unrolled_config_words);
    Alcotest.(check bool) "cycles cost is honest (no overlap)" true
      (c.Loop_flow.looped_cycles >= c.Loop_flow.unrolled_cycles)
  | None -> Alcotest.fail "expected looped costs"

let test_parametric_instantiate_base () =
  let staged =
    expect_looped
      "void main() { for (i = 0; i < 16; i++) { out[i] = 3 * x[i] + 1; } }"
  in
  (* instantiating any k yields a structurally valid job the simulator
     accepts *)
  match Loop_flow.loops staged with
  | [ l ] ->
    for k = 0 to 15 do
      let job = Parametric.instantiate l.Loop_flow.body k in
      let _, trace = Fpfa_sim.Sim.run job in
      Alcotest.(check bool) "runs" true (trace.Fpfa_sim.Sim.cycles_run > 0)
    done
  | _ -> Alcotest.fail "expected one loop segment"

let test_trip_count_variants () =
  (* non-zero start *)
  check_verified
    "void main() { for (i = 2; i < 14; i++) { out[i] = x[i] + 1; } }";
  ignore
    (expect_looped
       "void main() { for (i = 2; i < 14; i++) { out[i] = x[i] + 1; } }")

let test_multiple_loops_staged () =
  let source =
    "void main() { s = 0; for (i = 0; i < 8; i++) { s = s + x[i]; } \
     for (i = 0; i < 8; i++) { out[i] = x[i] - s / 8; } }"
  in
  let staged = expect_looped source in
  Alcotest.(check int) "two loop segments" 2
    (List.length (Loop_flow.loops staged));
  check_verified source;
  (* and the staged run really removes the mean *)
  let memory_init = [ ("x", [| 8; 16; 24; 32; 8; 16; 24; 32 |]) ] in
  let final = Loop_flow.run ~memory_init staged in
  Alcotest.(check (option (list int))) "mean removed"
    (Some [ -12; -4; 4; 12; -12; -4; 4; 12 ])
    (Option.map Array.to_list (List.assoc_opt "out" final))

let test_mixed_qualifying_loops () =
  (* the second loop is non-linear and must unroll inside a straight
     segment while the first still parametrises *)
  let source =
    "void main() { for (i = 0; i < 8; i++) { out[i] = x[i] * 2; } \
     for (i = 0; i < 6; i++) { sq[i] = i * i; } }"
  in
  let staged = expect_looped source in
  Alcotest.(check int) "one loop parametrised" 1
    (List.length (Loop_flow.loops staged));
  check_verified source

(* Property: whatever the outcome (looped or fallback), the mapping always
   verifies against the reference interpreter on generated counted loops. *)
let loop_flow_always_verifies =
  QCheck.Test.make ~name:"loop flow verifies on random loops" ~count:60
    (QCheck.make
       ~print:(fun (bound, body) ->
         Printf.sprintf "bound=%d body=%s" bound
           (Cfront.Ast.program_to_string
              [
                {
                  Cfront.Ast.name = "main"; params = []; body;
                  returns_value = false;
                };
              ]))
       QCheck.Gen.(
         pair (int_range 4 8)
           (list_size (int_range 1 3)
              (Gen.stmt_gen ~depth:1 ~loop_var:(Some "li")))))
    (fun (bound, body) ->
      let program =
        [
          {
            Cfront.Ast.name = "main";
            params = [];
            body =
              [
                Cfront.Ast.Assign (Cfront.Ast.Lvar "li", Cfront.Ast.Int_lit 0);
                Cfront.Ast.While
                  ( Cfront.Ast.Binop
                      ( Cfront.Ast.Lt,
                        Cfront.Ast.Var "li",
                        Cfront.Ast.Int_lit bound ),
                    body
                    @ [
                        Cfront.Ast.Assign
                          ( Cfront.Ast.Lvar "li",
                            Cfront.Ast.Binop
                              ( Cfront.Ast.Add,
                                Cfront.Ast.Var "li",
                                Cfront.Ast.Int_lit 1 ) );
                      ] );
              ];
            returns_value = false;
          };
        ]
      in
      let source = Cfront.Ast.program_to_string program in
      let outcome = Loop_flow.map_source source in
      Loop_flow.verify ~memory_init:Gen.memory_init source outcome)

let suite =
  [
    Alcotest.test_case "elementwise" `Quick test_elementwise_loops_map;
    Alcotest.test_case "reduction" `Quick test_reduction_loops_map;
    Alcotest.test_case "linear counter" `Quick test_linear_counter_use_maps;
    Alcotest.test_case "strided access" `Quick test_strided_access_maps;
    Alcotest.test_case "nonlinear fallback" `Quick test_nonlinear_counter_falls_back;
    Alcotest.test_case "no loop" `Quick test_no_loop_falls_back;
    Alcotest.test_case "small trip" `Quick test_small_trip_falls_back;
    Alcotest.test_case "counter written" `Quick test_counter_written_in_body_falls_back;
    Alcotest.test_case "prologue/epilogue" `Quick test_prologue_epilogue_effects;
    Alcotest.test_case "costs" `Quick test_costs_favour_config_size;
    Alcotest.test_case "instantiate" `Quick test_parametric_instantiate_base;
    Alcotest.test_case "trip variants" `Quick test_trip_count_variants;
    Alcotest.test_case "multiple loops" `Quick test_multiple_loops_staged;
    Alcotest.test_case "mixed loops" `Quick test_mixed_qualifying_loops;
    QCheck_alcotest.to_alcotest loop_flow_always_verifies;
  ]
