(* Unit + property tests for the CDFG evaluator. *)

module G = Cdfg.Graph
module Op = Cdfg.Op
module Eval = Cdfg.Eval

let region result name =
  match List.assoc_opt name result.Eval.memory with
  | Some arr -> Array.to_list arr
  | None -> Alcotest.fail ("no region " ^ name)

let test_token_snapshot_semantics () =
  (* A fetch sharing the pre-store token must see the old value even though
     node ids would evaluate it "after" the store. *)
  let g = G.create "t" in
  G.declare_region g "r" { G.size = Some 1; implicit = true };
  let ss = G.add g (G.Ss_in "r") [] in
  let zero = G.add g (G.Const 0) [] in
  let v = G.add g (G.Const 42) [] in
  let st = G.add g (G.St "r") [ ss; zero; v ] in
  let fe_old = G.add g (G.Fe "r") [ ss; zero ] in
  ignore (G.add g (G.Ss_out "r") [ st ]);
  G.declare_region g "probe" { G.size = Some 1; implicit = false };
  let ss2 = G.add g (G.Ss_in "probe") [] in
  let st2 = G.add g (G.St "probe") [ ss2; zero; fe_old ] in
  ignore (G.add g (G.Ss_out "probe") [ st2 ]);
  let result = Eval.run ~memory_init:[ ("r", [| 7 |]) ] g in
  Alcotest.(check (list int)) "snapshot read" [ 7 ] (region result "probe");
  Alcotest.(check (list int)) "store landed" [ 42 ] (region result "r")

let test_delete_semantics () =
  let g = G.create "t" in
  G.declare_region g "r" { G.size = Some 2; implicit = true };
  let ss = G.add g (G.Ss_in "r") [] in
  let zero = G.add g (G.Const 0) [] in
  let del = G.add g (G.Del "r") [ ss; zero ] in
  ignore (G.add g (G.Ss_out "r") [ del ]);
  let result = Eval.run ~memory_init:[ ("r", [| 5; 6 |]) ] g in
  Alcotest.(check (list int)) "deleted reads as 0, rest kept" [ 0; 6 ]
    (region result "r")

let test_fetch_of_deleted_faults () =
  let g = G.create "t" in
  G.declare_region g "r" { G.size = Some 1; implicit = true } ;
  let ss = G.add g (G.Ss_in "r") [] in
  let zero = G.add g (G.Const 0) [] in
  let del = G.add g (G.Del "r") [ ss; zero ] in
  let fe = G.add g (G.Fe "r") [ del; zero ] in
  G.declare_region g "o" { G.size = Some 1; implicit = false };
  let ss2 = G.add g (G.Ss_in "o") [] in
  let st = G.add g (G.St "o") [ ss2; zero; fe ] in
  ignore (G.add g (G.Ss_out "o") [ st ]);
  ignore (G.add g (G.Ss_out "r") [ del ]);
  match Eval.run g with
  | exception Eval.Error _ -> ()
  | _ -> Alcotest.fail "fetch of deleted tuple accepted"

let test_store_then_delete_then_store () =
  let g = G.create "t" in
  G.declare_region g "r" { G.size = Some 1; implicit = false };
  let ss = G.add g (G.Ss_in "r") [] in
  let zero = G.add g (G.Const 0) [] in
  let st1 = G.add g (G.St "r") [ ss; zero; G.add g (G.Const 1) [] ] in
  let del = G.add g (G.Del "r") [ st1; zero ] in
  let st2 = G.add g (G.St "r") [ del; zero; G.add g (G.Const 2) [] ] in
  ignore (G.add g (G.Ss_out "r") [ st2 ]);
  let result = Eval.run g in
  Alcotest.(check (list int)) "resurrected" [ 2 ] (region result "r")

let test_bounds () =
  let g = G.create "t" in
  G.declare_region g "r" { G.size = Some 2; implicit = false };
  let ss = G.add g (G.Ss_in "r") [] in
  let five = G.add g (G.Const 5) [] in
  let v = G.add g (G.Const 1) [] in
  let st = G.add g (G.St "r") [ ss; five; v ] in
  ignore (G.add g (G.Ss_out "r") [ st ]);
  match Eval.run g with
  | exception Eval.Error _ -> ()
  | _ -> Alcotest.fail "out-of-bounds store accepted"

let test_implicit_region_growth () =
  let result =
    Eval.run
      (Cdfg.Builder.build_program "void main() { a[6] = 3; }")
  in
  Alcotest.(check int) "materialised up to highest store" 7
    (List.length (region result "a"))

let test_value_of () =
  let g = G.create "t" in
  let a = G.add g (G.Const 6) [] in
  let b = G.add g (G.Const 7) [] in
  let m = G.add g (G.Binop Op.Mul) [ a; b ] in
  Alcotest.(check int) "42" 42 (Eval.value_of g m)

let test_equal_result_padding () =
  let r1 = { Eval.memory = [ ("a", [| 1; 0 |]) ]; named = [] } in
  let r2 = { Eval.memory = [ ("a", [| 1 |]) ]; named = [] } in
  Alcotest.(check bool) "zero padded equal" true (Eval.equal_result r1 r2);
  let r3 = { Eval.memory = [ ("a", [| 1; 2 |]) ]; named = [] } in
  Alcotest.(check bool) "differs" false (Eval.equal_result r1 r3)

(* Property: on every generated program, building the CDFG and evaluating
   it matches the reference interpreter. *)
let builder_eval_matches_interp =
  QCheck.Test.make ~name:"CDFG evaluation = interpreter" ~count:300
    Gen.program (fun program ->
      let st =
        Cfront.Interp.run_main ~array_init:Gen.array_inputs
          ~scalar_init:Gen.scalar_inputs program
      in
      let unrolled = Cfront.Unroll.unroll_program program in
      let g = Cdfg.Builder.build_func (List.hd unrolled) in
      let result = Eval.run ~memory_init:Gen.memory_init g in
      Eval.conforms_to_interp ~memory_init:Gen.memory_init st result)

let suite =
  [
    Alcotest.test_case "token snapshot" `Quick test_token_snapshot_semantics;
    Alcotest.test_case "delete" `Quick test_delete_semantics;
    Alcotest.test_case "fetch deleted" `Quick test_fetch_of_deleted_faults;
    Alcotest.test_case "store/delete/store" `Quick test_store_then_delete_then_store;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "implicit growth" `Quick test_implicit_region_growth;
    Alcotest.test_case "value_of" `Quick test_value_of;
    Alcotest.test_case "equal_result" `Quick test_equal_result_padding;
    QCheck_alcotest.to_alcotest builder_eval_matches_interp;
  ]
