(* Invariant tests for job metrics, plus format robustness (encode fuzzing,
   table/gantt smoke). *)

module Metrics = Mapping.Metrics
module Job = Mapping.Job

let jobs =
  lazy
    (List.map
       (fun (k : Fpfa_kernels.Kernels.t) ->
         (k, (Fpfa_core.Flow.map_source k.Fpfa_kernels.Kernels.source).Fpfa_core.Flow.job))
       Fpfa_kernels.Kernels.all)

let test_metric_invariants () =
  List.iter
    (fun ((k : Fpfa_kernels.Kernels.t), job) ->
      let m = Metrics.of_job job in
      let name = k.Fpfa_kernels.Kernels.name in
      Alcotest.(check bool) (name ^ " cycles positive") true (m.Metrics.cycles > 0);
      Alcotest.(check int) (name ^ " cycle split")
        m.Metrics.cycles
        (m.Metrics.exec_cycles + m.Metrics.inserted_cycles);
      Alcotest.(check int) (name ^ " bus accounting")
        m.Metrics.bus_transfers
        (m.Metrics.moves + m.Metrics.mem_writes + m.Metrics.forwards);
      Alcotest.(check bool) (name ^ " locality in [0,1]") true
        (m.Metrics.locality >= 0.0 && m.Metrics.locality <= 1.0);
      Alcotest.(check bool) (name ^ " utilisation in (0,1]") true
        (m.Metrics.alu_utilisation > 0.0 && m.Metrics.alu_utilisation <= 1.0);
      Alcotest.(check bool) (name ^ " firings >= exec cycles") true
        (m.Metrics.alu_firings >= m.Metrics.exec_cycles);
      Alcotest.(check bool) (name ^ " ops >= firings minus passes") true
        (m.Metrics.alu_ops <= 3 * m.Metrics.alu_firings);
      Alcotest.(check bool) (name ^ " energy positive") true (m.Metrics.energy > 0.0))
    (Lazy.force jobs)

let test_trace_agrees_with_metrics () =
  List.iter
    (fun ((k : Fpfa_kernels.Kernels.t), job) ->
      let m = Metrics.of_job job in
      let _, trace =
        Fpfa_sim.Sim.run ~memory_init:k.Fpfa_kernels.Kernels.inputs job
      in
      Alcotest.(check int)
        (k.Fpfa_kernels.Kernels.name ^ " moves")
        m.Metrics.moves trace.Fpfa_sim.Sim.moves_executed;
      Alcotest.(check int)
        (k.Fpfa_kernels.Kernels.name ^ " writes")
        (m.Metrics.mem_writes + m.Metrics.deletes)
        trace.Fpfa_sim.Sim.writes_executed)
    (Lazy.force jobs)

let test_gantt_renders () =
  let _, job = List.hd (Lazy.force jobs) in
  let text = Format.asprintf "%a" Job.pp_gantt job in
  Alcotest.(check bool) "mentions every PP" true
    (List.for_all
       (fun pp ->
         let needle = Printf.sprintf "PP%d" pp in
         let rec find i =
           i + String.length needle <= String.length text
           && (String.sub text i (String.length needle) = needle || find (i + 1))
         in
         find 0)
       [ 0; 1; 2; 3; 4 ])

(* Fuzz: bit-flipped configuration images must decode, raise Corrupt, or
   produce a job whose simulation faults — never crash with anything
   else. *)
let encode_fuzz =
  QCheck.Test.make ~name:"corrupt configs never crash" ~count:200
    QCheck.(pair (int_range 0 10_000) (int_range 0 255))
    (fun (position, byte) ->
      let _, job = List.hd (Lazy.force jobs) in
      let image = Bytes.of_string (Mapping.Encode.to_string job) in
      let position = position mod Bytes.length image in
      Bytes.set image position (Char.chr byte);
      match Mapping.Encode.of_string (Bytes.to_string image) with
      | job' -> (
        (* decoded: it must either run or fault cleanly *)
        match Fpfa_sim.Sim.run job' with
        | _ -> true
        | exception Fpfa_sim.Sim.Fault _ -> true
        | exception Cdfg.Eval.Error _ -> true)
      | exception Mapping.Encode.Corrupt _ -> true
      | exception Cdfg.Serialize.Corrupt _ -> true)

let test_bytesio_edges () =
  let w = Fpfa_util.Bytesio.writer () in
  Fpfa_util.Bytesio.u8 w 255;
  Fpfa_util.Bytesio.u16 w 65535;
  Fpfa_util.Bytesio.i32 w (-1);
  Fpfa_util.Bytesio.i64 w min_int;
  Fpfa_util.Bytesio.str w "";
  Fpfa_util.Bytesio.str w (String.make 1000 'x');
  let r = Fpfa_util.Bytesio.reader (Fpfa_util.Bytesio.contents w) in
  Alcotest.(check int) "u8" 255 (Fpfa_util.Bytesio.read_u8 r);
  Alcotest.(check int) "u16" 65535 (Fpfa_util.Bytesio.read_u16 r);
  Alcotest.(check int) "i32" (-1) (Fpfa_util.Bytesio.read_i32 r);
  Alcotest.(check int) "i64" min_int (Fpfa_util.Bytesio.read_i64 r);
  Alcotest.(check string) "empty string" "" (Fpfa_util.Bytesio.read_str r);
  Alcotest.(check int) "long string" 1000
    (String.length (Fpfa_util.Bytesio.read_str r));
  Alcotest.(check bool) "at end" true (Fpfa_util.Bytesio.at_end r);
  (match Fpfa_util.Bytesio.u8 w 256 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "u8 out of range accepted");
  match Fpfa_util.Bytesio.read_u8 r with
  | exception Fpfa_util.Bytesio.Corrupt _ -> ()
  | _ -> Alcotest.fail "read past end accepted"

let suite =
  [
    Alcotest.test_case "metric invariants" `Quick test_metric_invariants;
    Alcotest.test_case "trace agreement" `Quick test_trace_agrees_with_metrics;
    Alcotest.test_case "gantt renders" `Quick test_gantt_renders;
    Alcotest.test_case "bytesio edges" `Quick test_bytesio_edges;
    QCheck_alcotest.to_alcotest encode_fuzz;
  ]
