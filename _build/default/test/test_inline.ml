(* Unit tests for function inlining. *)

module Ast = Cfront.Ast
module Inline = Cfront.Inline

let inline_main source =
  Inline.entry (Cfront.Parser.parse_program source)

let run_main ?array_init source =
  Cfront.Interp.run ?array_init (inline_main source)

let scalar state name =
  match List.assoc_opt name state.Cfront.Interp.scalars with
  | Some v -> v
  | None -> Alcotest.fail ("no scalar " ^ name)

let test_simple_call () =
  let st =
    run_main "int add1(int v) { return v + 1; } void main() { x = add1(41); }"
  in
  Alcotest.(check int) "result" 42 (scalar st "x")

let test_nested_calls () =
  let st =
    run_main
      "int sq(int v) { return v * v; }\n\
       int quad(int v) { return sq(sq(v)); }\n\
       void main() { x = quad(2); }"
  in
  Alcotest.(check int) "2^4" 16 (scalar st "x")

let test_call_in_expression_position () =
  let st =
    run_main
      "int f(int a) { return a * 3; } void main() { x = f(1) + f(2) * f(3); }"
  in
  Alcotest.(check int) "3 + 6*9" 57 (scalar st "x")

let test_locals_are_renamed () =
  (* the callee's local t must not clash with the caller's t *)
  let st =
    run_main
      "int f(int a) { int t; t = a * 2; return t; }\n\
       void main() { t = 5; x = f(10); y = t; }"
  in
  Alcotest.(check int) "callee result" 20 (scalar st "x");
  Alcotest.(check int) "caller t untouched" 5 (scalar st "y")

let test_globals_are_shared () =
  let st =
    run_main
      "void bump() { counter = counter + 1; return; }\n\
       void main() { counter = 0; bump(); bump(); bump(); }"
  in
  Alcotest.(check int) "global incremented" 3 (scalar st "counter")

let test_callee_arrays_renamed () =
  let st =
    run_main
      "int sum3(int a) { int buf[3]; buf[0] = a; buf[1] = a + 1; buf[2] = a + 2;\n\
       return buf[0] + buf[1] + buf[2]; }\n\
       void main() { x = sum3(7); }"
  in
  Alcotest.(check int) "7+8+9" 24 (scalar st "x")

let test_loops_inside_callee () =
  let st =
    run_main
      "int sum_to(int n) { s = 0; for (i = 1; i <= n; i++) { s = s + i; } return s; }\n\
       void main() { x = sum_to(10); }"
  in
  Alcotest.(check int) "55" 55 (scalar st "x")

let test_call_inside_loop_body () =
  let st =
    run_main
      "int dbl(int v) { return 2 * v; }\n\
       void main() { acc = 0; for (i = 0; i < 4; i++) { acc = acc + dbl(i); } }"
  in
  Alcotest.(check int) "2*(0+1+2+3)" 12 (scalar st "acc")

let expect_error source =
  match Inline.program (Cfront.Parser.parse_program source) with
  | exception Inline.Error _ -> ()
  | _ -> Alcotest.fail ("expected inline error: " ^ source)

let test_recursion_rejected () =
  expect_error "int f(int n) { return f(n - 1); } void main() { x = f(3); }";
  expect_error
    "int f(int n) { return g(n); } int g(int n) { return f(n); }\n\
     void main() { x = f(3); }"

let test_mid_return_rejected () =
  expect_error
    "int f(int n) { if (n) { return 1; } return 0; } void main() { x = f(2); }"

let test_void_in_expression_rejected () =
  expect_error "void f() { g = 1; return; } void main() { x = f() + 1; }"

let test_arity_checked () =
  expect_error "int f(int a, int b) { return a + b; } void main() { x = f(1); }"

let test_call_in_loop_condition_rejected () =
  expect_error
    "int f(int n) { return n - 1; } void main() { i = 3; while (f(i)) { i = i - 1; } }"

let test_full_flow_with_calls () =
  let source =
    "int mac(int acc, int a, int b) { return acc + a * b; }\n\
     void main() { s = 0; for (i = 0; i < 4; i++) { s = mac(s, u[i], v[i]); } }"
  in
  let result = Fpfa_core.Flow.map_source source in
  let memory_init = [ ("u", [| 1; 2; 3; 4 |]); ("v", [| 5; 6; 7; 8 |]) ] in
  Alcotest.(check bool) "verifies" true
    (Fpfa_core.Flow.verify ~memory_init result);
  let mem, _ = Fpfa_sim.Sim.run ~memory_init result.Fpfa_core.Flow.job in
  Alcotest.(check int) "dot product" 70
    (match List.assoc "s" mem with [| v |] -> v | _ -> -1)

let test_idempotent_on_call_free () =
  let source = "void main() { x = abs(-3) + min(1, 2); }" in
  let p = Cfront.Parser.parse_program source in
  Alcotest.(check bool) "unchanged" true
    (Ast.equal_program p (Inline.program p))

let suite =
  [
    Alcotest.test_case "simple call" `Quick test_simple_call;
    Alcotest.test_case "nested calls" `Quick test_nested_calls;
    Alcotest.test_case "expression position" `Quick test_call_in_expression_position;
    Alcotest.test_case "locals renamed" `Quick test_locals_are_renamed;
    Alcotest.test_case "globals shared" `Quick test_globals_are_shared;
    Alcotest.test_case "callee arrays" `Quick test_callee_arrays_renamed;
    Alcotest.test_case "loops in callee" `Quick test_loops_inside_callee;
    Alcotest.test_case "call in loop body" `Quick test_call_inside_loop_body;
    Alcotest.test_case "recursion" `Quick test_recursion_rejected;
    Alcotest.test_case "mid return" `Quick test_mid_return_rejected;
    Alcotest.test_case "void in expr" `Quick test_void_in_expression_rejected;
    Alcotest.test_case "arity" `Quick test_arity_checked;
    Alcotest.test_case "call in loop cond" `Quick test_call_in_loop_condition_rejected;
    Alcotest.test_case "full flow" `Quick test_full_flow_with_calls;
    Alcotest.test_case "idempotent" `Quick test_idempotent_on_call_free;
  ]
