(* Unit + property tests for the parser. *)

module Ast = Cfront.Ast

let expr = Alcotest.testable Ast.pp_expr Ast.equal_expr

let parse_e = Cfront.Parser.parse_expr

let test_precedence () =
  Alcotest.check expr "mul binds tighter than add"
    (Ast.Binop (Ast.Add, Ast.Var "a", Ast.Binop (Ast.Mul, Ast.Var "b", Ast.Var "c")))
    (parse_e "a + b * c");
  Alcotest.check expr "shift below add"
    (Ast.Binop (Ast.Shl, Ast.Var "a", Ast.Binop (Ast.Add, Ast.Var "b", Ast.Int_lit 1)))
    (parse_e "a << b + 1");
  Alcotest.check expr "comparison below shift"
    (Ast.Binop (Ast.Lt, Ast.Binop (Ast.Shr, Ast.Var "a", Ast.Int_lit 2), Ast.Var "b"))
    (parse_e "a >> 2 < b");
  Alcotest.check expr "and below or"
    (Ast.Binop (Ast.Lor, Ast.Var "a", Ast.Binop (Ast.Land, Ast.Var "b", Ast.Var "c")))
    (parse_e "a || b && c")

let test_associativity () =
  Alcotest.check expr "sub is left associative"
    (Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Var "a", Ast.Var "b"), Ast.Var "c"))
    (parse_e "a - b - c")

let test_unary () =
  Alcotest.check expr "nested unary"
    (Ast.Unop (Ast.Neg, Ast.Unop (Ast.Bnot, Ast.Var "x")))
    (parse_e "-~x");
  Alcotest.check expr "unary plus is dropped" (Ast.Var "x") (parse_e "+x")

let test_ternary () =
  Alcotest.check expr "ternary right associative"
    (Ast.Cond (Ast.Var "a", Ast.Int_lit 1, Ast.Cond (Ast.Var "b", Ast.Int_lit 2, Ast.Int_lit 3)))
    (parse_e "a ? 1 : b ? 2 : 3")

let test_index_and_call () =
  Alcotest.check expr "array index"
    (Ast.Index ("a", Ast.Binop (Ast.Add, Ast.Var "i", Ast.Int_lit 1)))
    (parse_e "a[i + 1]");
  Alcotest.check expr "intrinsic call"
    (Ast.Call ("max", [ Ast.Var "a"; Ast.Int_lit 0 ]))
    (parse_e "max(a, 0)")

let parse_main source =
  match Cfront.Parser.parse_program source with
  | [ f ] -> f.Ast.body
  | _ -> Alcotest.fail "expected one function"

let stmt_count body = Ast.stmt_count body

let test_compound_assign_desugar () =
  let body = parse_main "void main() { x += 2; y *= x; }" in
  match body with
  | [
   Ast.Assign (Ast.Lvar "x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int_lit 2));
   Ast.Assign (Ast.Lvar "y", Ast.Binop (Ast.Mul, Ast.Var "y", Ast.Var "x"));
  ] ->
    ()
  | _ -> Alcotest.fail "compound assignment desugaring"

let test_increment_desugar () =
  let body = parse_main "void main() { i++; j--; }" in
  match body with
  | [
   Ast.Assign (Ast.Lvar "i", Ast.Binop (Ast.Add, Ast.Var "i", Ast.Int_lit 1));
   Ast.Assign (Ast.Lvar "j", Ast.Binop (Ast.Sub, Ast.Var "j", Ast.Int_lit 1));
  ] ->
    ()
  | _ -> Alcotest.fail "increment desugaring"

let test_for_desugar () =
  let body = parse_main "void main() { for (i = 0; i < 4; i++) { x = i; } }" in
  match body with
  | [ Ast.Assign (Ast.Lvar "i", Ast.Int_lit 0); Ast.While (cond, loop_body) ] ->
    Alcotest.check expr "condition"
      (Ast.Binop (Ast.Lt, Ast.Var "i", Ast.Int_lit 4))
      cond;
    Alcotest.(check int) "body + step" 2 (List.length loop_body)
  | _ -> Alcotest.fail "for desugaring"

let test_for_without_init_step () =
  let body = parse_main "void main() { for (; x < 3;) { x = x + 1; } }" in
  match body with
  | [ Ast.While (_, _) ] -> ()
  | _ -> Alcotest.fail "for without init/step"

let test_dangling_else () =
  let body = parse_main "void main() { if (a) if (b) x = 1; else x = 2; }" in
  match body with
  | [ Ast.If (_, [ Ast.If (_, _, [ _ ]) ], []) ] -> ()
  | _ -> Alcotest.fail "dangling else binds to inner if"

let test_declarations () =
  let body = parse_main "void main() { int x; int y = 3; int a[10]; }" in
  match body with
  | [
   Ast.Decl ("x", None, None);
   Ast.Decl ("y", None, Some (Ast.Int_lit 3));
   Ast.Decl ("a", Some 10, None);
  ] ->
    ()
  | _ -> Alcotest.fail "declarations"

let test_functions_and_params () =
  match Cfront.Parser.parse_program "int f(int a, int b) { return a + b; } void main() { x = 1; }" with
  | [ f; m ] ->
    Alcotest.(check string) "name" "f" f.Ast.name;
    Alcotest.(check (list string)) "params" [ "a"; "b" ] f.Ast.params;
    Alcotest.(check bool) "returns" true f.Ast.returns_value;
    Alcotest.(check bool) "main void" false m.Ast.returns_value
  | _ -> Alcotest.fail "two functions"

let test_empty_statement () =
  let body = parse_main "void main() { ;; x = 1; ; }" in
  Alcotest.(check int) "empty statements dropped" 1 (stmt_count body)

let expect_syntax_error source =
  match Cfront.Parser.parse_program source with
  | exception Cfront.Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail ("expected syntax error: " ^ source)

let test_errors () =
  expect_syntax_error "void main() { x = ; }";
  expect_syntax_error "void main() { if x { } }";
  expect_syntax_error "void main() { x = 1 }";
  expect_syntax_error "void main() { int a[n]; }";
  expect_syntax_error "void main() {";
  expect_syntax_error "main() { }";
  expect_syntax_error ""

let test_paper_fir_parses () =
  let body =
    parse_main Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source
  in
  Alcotest.(check int) "statement count" 5 (stmt_count body)

(* Property: printing then re-parsing an expression yields the same AST. *)
let roundtrip_expr =
  QCheck.Test.make ~name:"print/parse round-trip (expr)" ~count:500 Gen.expr
    (fun e ->
      let printed = Format.asprintf "%a" Ast.pp_expr e in
      Ast.equal_expr e (Cfront.Parser.parse_expr printed))

let roundtrip_program =
  QCheck.Test.make ~name:"print/parse round-trip (program)" ~count:200
    Gen.program (fun p ->
      let printed = Ast.program_to_string p in
      Ast.equal_program p (Cfront.Parser.parse_program printed))

let suite =
  [
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "associativity" `Quick test_associativity;
    Alcotest.test_case "unary" `Quick test_unary;
    Alcotest.test_case "ternary" `Quick test_ternary;
    Alcotest.test_case "index and call" `Quick test_index_and_call;
    Alcotest.test_case "compound assign" `Quick test_compound_assign_desugar;
    Alcotest.test_case "increment" `Quick test_increment_desugar;
    Alcotest.test_case "for desugar" `Quick test_for_desugar;
    Alcotest.test_case "for minimal" `Quick test_for_without_init_step;
    Alcotest.test_case "dangling else" `Quick test_dangling_else;
    Alcotest.test_case "declarations" `Quick test_declarations;
    Alcotest.test_case "functions" `Quick test_functions_and_params;
    Alcotest.test_case "empty statements" `Quick test_empty_statement;
    Alcotest.test_case "syntax errors" `Quick test_errors;
    Alcotest.test_case "paper FIR parses" `Quick test_paper_fir_parses;
    QCheck_alcotest.to_alcotest roundtrip_expr;
    QCheck_alcotest.to_alcotest roundtrip_program;
  ]
