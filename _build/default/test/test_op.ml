(* Unit + property tests for the primitive operation semantics. *)

module Op = Cdfg.Op

let test_total_semantics () =
  Alcotest.(check int) "div 0" 0 (Op.eval_binop Op.Div 7 0);
  Alcotest.(check int) "mod 0" 0 (Op.eval_binop Op.Mod 7 0);
  Alcotest.(check int) "shl 100" 0 (Op.eval_binop Op.Shl 1 100);
  Alcotest.(check int) "shr -1" 0 (Op.eval_binop Op.Shr 1 (-1));
  Alcotest.(check int) "shl ok" 8 (Op.eval_binop Op.Shl 1 3);
  Alcotest.(check int) "shr sign extends" (-1) (Op.eval_binop Op.Shr (-2) 1)

let test_comparisons () =
  Alcotest.(check int) "lt" 1 (Op.eval_binop Op.Lt (-2) 3);
  Alcotest.(check int) "ge" 0 (Op.eval_binop Op.Ge (-2) 3);
  Alcotest.(check int) "eq" 1 (Op.eval_binop Op.Eq 4 4);
  Alcotest.(check int) "land strict" 1 (Op.eval_binop Op.Land (-7) 2);
  Alcotest.(check int) "lor" 0 (Op.eval_binop Op.Lor 0 0)

let test_unops () =
  Alcotest.(check int) "neg" (-5) (Op.eval_unop Op.Neg 5);
  Alcotest.(check int) "bnot" (-6) (Op.eval_unop Op.Bnot 5);
  Alcotest.(check int) "lnot 0" 1 (Op.eval_unop Op.Lnot 0);
  Alcotest.(check int) "lnot 5" 0 (Op.eval_unop Op.Lnot 5)

let test_multiplier_class () =
  Alcotest.(check bool) "mul" true (Op.is_multiplier_class Op.Mul);
  Alcotest.(check bool) "div" true (Op.is_multiplier_class Op.Div);
  Alcotest.(check bool) "add" false (Op.is_multiplier_class Op.Add);
  Alcotest.(check bool) "shl" false (Op.is_multiplier_class Op.Shl)

let test_ast_conversion_total () =
  (* every AST operator converts, and agrees with the unroller's constant
     evaluator on concrete operands *)
  let ast_ops =
    [
      Cfront.Ast.Add; Cfront.Ast.Sub; Cfront.Ast.Mul; Cfront.Ast.Div;
      Cfront.Ast.Mod; Cfront.Ast.Shl; Cfront.Ast.Shr; Cfront.Ast.Band;
      Cfront.Ast.Bor; Cfront.Ast.Bxor; Cfront.Ast.Lt; Cfront.Ast.Le;
      Cfront.Ast.Gt; Cfront.Ast.Ge; Cfront.Ast.Eq; Cfront.Ast.Ne;
      Cfront.Ast.Land; Cfront.Ast.Lor;
    ]
  in
  Alcotest.(check int) "all ops covered" (List.length Op.all_binops)
    (List.length ast_ops);
  List.iter
    (fun ast_op ->
      let op = Op.binop_of_ast ast_op in
      List.iter
        (fun (a, b) ->
          let via_ast =
            Cfront.Unroll.eval_const_expr
              (fun _ -> None)
              (Cfront.Ast.Binop (ast_op, Cfront.Ast.Int_lit a, Cfront.Ast.Int_lit b))
          in
          Alcotest.(check (option int))
            (Op.binop_to_string op)
            via_ast
            (Some (Op.eval_binop op a b)))
        [ (3, 4); (-7, 2); (5, 0); (0, -3); (1, 70) ])
    ast_ops

let commutativity_correct =
  QCheck.Test.make ~name:"commutative ops commute" ~count:200
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      List.for_all
        (fun op ->
          (not (Op.commutative op)) || Op.eval_binop op a b = Op.eval_binop op b a)
        Op.all_binops)

let suite =
  [
    Alcotest.test_case "total semantics" `Quick test_total_semantics;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "unops" `Quick test_unops;
    Alcotest.test_case "multiplier class" `Quick test_multiplier_class;
    Alcotest.test_case "ast conversion" `Quick test_ast_conversion_total;
    QCheck_alcotest.to_alcotest commutativity_correct;
  ]
