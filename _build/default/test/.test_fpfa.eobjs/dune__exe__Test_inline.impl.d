test/test_inline.ml: Alcotest Cfront Fpfa_core Fpfa_sim List
