test/test_op.ml: Alcotest Cdfg Cfront List QCheck QCheck_alcotest
