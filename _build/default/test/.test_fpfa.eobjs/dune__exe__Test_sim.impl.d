test/test_sim.ml: Alcotest Array Baseline Cdfg Fpfa_arch Fpfa_core Fpfa_kernels Fpfa_sim List Mapping
