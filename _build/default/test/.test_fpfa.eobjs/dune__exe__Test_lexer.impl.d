test/test_lexer.ml: Alcotest Cfront List String
