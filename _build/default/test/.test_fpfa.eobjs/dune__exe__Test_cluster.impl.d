test/test_cluster.ml: Alcotest Array Cdfg Cfront Fpfa_arch Fpfa_kernels Fpfa_util List Mapping QCheck QCheck_alcotest Transform
