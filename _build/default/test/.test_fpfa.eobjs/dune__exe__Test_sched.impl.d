test/test_sched.ml: Alcotest Array Cdfg Fpfa_kernels List Mapping QCheck QCheck_alcotest Transform
