test/test_graph.ml: Alcotest Cdfg Fpfa_kernels Fpfa_util Hashtbl List Option
