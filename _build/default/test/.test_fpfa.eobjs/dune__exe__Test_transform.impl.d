test/test_transform.ml: Alcotest Array Cdfg Cfront Fpfa_kernels Gen List Option QCheck QCheck_alcotest Transform
