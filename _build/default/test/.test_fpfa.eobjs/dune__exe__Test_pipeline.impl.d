test/test_pipeline.ml: Alcotest Array Fpfa_core Fpfa_kernels Fpfa_util List Option
