test/test_builder.ml: Alcotest Array Cdfg Cfront Fpfa_kernels List Option
