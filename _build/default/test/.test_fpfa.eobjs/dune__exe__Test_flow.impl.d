test/test_flow.ml: Alcotest Baseline Cfront Fpfa_core Fpfa_kernels Fpfa_sim Gen List Mapping QCheck QCheck_alcotest
