test/test_arch.ml: Alcotest Fpfa_arch
