test/gen.ml: Array Cfront Format List QCheck
