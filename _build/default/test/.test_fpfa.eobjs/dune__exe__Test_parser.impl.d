test/test_parser.ml: Alcotest Cfront Format Fpfa_kernels Gen List QCheck QCheck_alcotest
