test/test_metrics.ml: Alcotest Bytes Cdfg Char Format Fpfa_core Fpfa_kernels Fpfa_sim Fpfa_util Lazy List Mapping Printf QCheck QCheck_alcotest String
