test/test_eval.ml: Alcotest Array Cdfg Cfront Gen List QCheck QCheck_alcotest
