test/test_unroll.ml: Alcotest Cfront Fpfa_kernels Gen List QCheck QCheck_alcotest
