test/test_range.ml: Alcotest Array Cdfg Cfront Fpfa_kernels Gen List Option Printf QCheck QCheck_alcotest String Transform
