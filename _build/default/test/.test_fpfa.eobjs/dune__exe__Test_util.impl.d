test/test_util.ml: Alcotest Fpfa_util List String
