test/test_fpfa.mli:
