test/test_sema.ml: Alcotest Cfront List Option
