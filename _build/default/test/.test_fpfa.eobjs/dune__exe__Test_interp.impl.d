test/test_interp.ml: Alcotest Array Cfront Fpfa_kernels List
