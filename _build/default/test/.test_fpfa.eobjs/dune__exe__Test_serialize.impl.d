test/test_serialize.ml: Alcotest Cdfg Filename Fpfa_core Fpfa_kernels Fpfa_sim Fun List Mapping QCheck QCheck_alcotest String Sys Transform
