test/test_loop.ml: Alcotest Array Cfront Fpfa_core Fpfa_sim Gen List Mapping Option Printf QCheck QCheck_alcotest String
