test/test_misc.ml: Alcotest Array Bytes Cdfg Format Fpfa_core Fpfa_kernels Fpfa_util List Mapping Printf String Transform
