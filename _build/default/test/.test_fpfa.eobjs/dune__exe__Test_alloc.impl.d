test/test_alloc.ml: Alcotest Array Cdfg Fpfa_arch Fpfa_kernels Fpfa_sim Fpfa_util Hashtbl List Mapping Transform
