(* Unit + property tests for the transformation passes. *)

module G = Cdfg.Graph
module Op = Cdfg.Op
module T = Transform

let build = Cdfg.Builder.build_program

let run_pass pass g =
  let changed = pass.T.Pass.run g in
  G.validate g;
  changed

let stats_after passes source =
  let g = build source in
  ignore (T.Simplify.minimize ~passes g);
  G.stats g

let test_const_fold_binop () =
  let g = build "void main() { x = 2 + 3 * 4; }" in
  ignore (T.Simplify.minimize ~passes:[ T.Rewrites.const_fold; T.Dce.pass ] g);
  let s = G.stats g in
  Alcotest.(check int) "no arithmetic left" 0 (s.G.adds + s.G.multiplies + s.G.other_alu);
  let result = Cdfg.Eval.run g in
  Alcotest.(check (option int)) "value" (Some 14)
    (Option.map (fun a -> a.(0)) (List.assoc_opt "x" result.Cdfg.Eval.memory))

let test_const_fold_mux () =
  let g = build "void main() { x = 1 ? 5 : 7; }" in
  ignore (T.Simplify.minimize ~passes:[ T.Rewrites.const_fold; T.Dce.pass ] g);
  Alcotest.(check int) "mux folded" 0 (G.stats g).G.muxes

let test_algebraic_identities () =
  let cases =
    [
      ("void main() { x = y + 0; }", `No_alu);
      ("void main() { x = 0 + y; }", `No_alu);
      ("void main() { x = y * 1; }", `No_alu);
      ("void main() { x = y - 0; }", `No_alu);
      ("void main() { x = y / 1; }", `No_alu);
      ("void main() { x = y << 0; }", `No_alu);
      ("void main() { x = y | 0; }", `No_alu);
      ("void main() { x = y ^ 0; }", `No_alu);
      ("void main() { x = y * 0; }", `No_alu);
      ("void main() { x = y - y; }", `No_alu);
      ("void main() { x = y ^ y; }", `No_alu);
      ("void main() { x = y == y; }", `No_alu);
    ]
  in
  List.iter
    (fun (source, _) ->
      let s =
        stats_after
          [ T.Rewrites.const_fold; T.Cse.pass; T.Rewrites.algebraic; T.Dce.pass ]
          source
      in
      Alcotest.(check int) (source ^ " simplified") 0
        (s.G.adds + s.G.multiplies + s.G.other_alu))
    cases

let test_mux_same_branches () =
  let g = build "void main() { x = c ? y : y; }" in
  ignore
    (T.Simplify.minimize ~passes:[ T.Cse.pass; T.Rewrites.algebraic; T.Dce.pass ] g);
  Alcotest.(check int) "mux gone" 0 (G.stats g).G.muxes

let test_cse_merges_fetches () =
  let g = build "void main() { x = a[0] + a[0]; }" in
  Alcotest.(check int) "two fetches before" 2 (G.stats g).G.fetches;
  ignore (T.Simplify.minimize ~passes:[ T.Cse.pass; T.Dce.pass ] g);
  Alcotest.(check int) "one fetch after" 1 (G.stats g).G.fetches

let test_cse_commutative () =
  let g = build "void main() { x = a[0] + a[1]; y = a[1] + a[0]; }" in
  ignore (T.Simplify.minimize ~passes:[ T.Cse.pass; T.Dce.pass ] g);
  Alcotest.(check int) "one add" 1 (G.stats g).G.adds

let test_cse_does_not_merge_noncommutative () =
  let g = build "void main() { x = a[0] - a[1]; y = a[1] - a[0]; }" in
  ignore (T.Simplify.minimize ~passes:[ T.Cse.pass; T.Dce.pass ] g);
  Alcotest.(check int) "two subs" 2 (G.stats g).G.adds

let test_forwarding_scalar () =
  let g = build "void main() { x = 5; y = x + 1; }" in
  ignore (T.Simplify.minimize g);
  let s = G.stats g in
  (* x's value forwards into y; both stores remain (observable), but no
     fetch is needed. *)
  Alcotest.(check int) "no fetches" 0 s.G.fetches;
  Alcotest.(check int) "stores remain" 2 s.G.stores

let test_forwarding_skips_other_addresses () =
  let g = build "void main() { b[0] = 1; x = b[1]; }" in
  ignore (T.Simplify.minimize g);
  (* the fetch of b[1] must skip over the store to b[0] and read ss_in *)
  let fe_token =
    G.fold g ~init:None ~f:(fun acc n ->
        match n.G.kind with
        | G.Fe "b" -> Some (List.nth (G.inputs g n.G.id) 0)
        | _ -> acc)
  in
  match fe_token with
  | Some token ->
    Alcotest.(check bool) "anchored on ss_in" true
      (match G.kind g token with G.Ss_in _ -> true | _ -> false)
  | None -> Alcotest.fail "fetch disappeared"

let test_forwarding_blocked_by_unknown_offset () =
  (* u is unknown, so a[u] may alias a[1]: the fetch must NOT be forwarded
     past the store. *)
  let g = build "void main() { a[u] = 5; x = a[1]; }" in
  ignore (T.Simplify.minimize g);
  let fe_token =
    G.fold g ~init:None ~f:(fun acc n ->
        match n.G.kind with
        | G.Fe "a" -> Some (List.nth (G.inputs g n.G.id) 0)
        | _ -> acc)
  in
  match fe_token with
  | Some token ->
    Alcotest.(check bool) "still behind the store" true
      (match G.kind g token with G.St "a" -> true | _ -> false)
  | None -> Alcotest.fail "fetch disappeared"

let test_dead_store_elimination () =
  let g = build "void main() { x = 1; x = 2; x = 3; }" in
  ignore (T.Simplify.minimize g);
  Alcotest.(check int) "one store survives" 1 (G.stats g).G.stores;
  let result = Cdfg.Eval.run g in
  Alcotest.(check (option int)) "last value" (Some 3)
    (Option.map (fun a -> a.(0)) (List.assoc_opt "x" result.Cdfg.Eval.memory))

let test_dead_store_keeps_read_values () =
  let g = build "void main() { x = 1; y = x; x = 2; }" in
  ignore (T.Simplify.minimize g);
  let result = Cdfg.Eval.run g in
  let cell name =
    Option.map (fun a -> a.(0)) (List.assoc_opt name result.Cdfg.Eval.memory)
  in
  Alcotest.(check (option int)) "y saw 1" (Some 1) (cell "y");
  Alcotest.(check (option int)) "x ends 2" (Some 2) (cell "x")

let test_dce_removes_unused () =
  let g = build "void main() { x = a[0] + a[1]; }" in
  (* make the expression dead by overwriting x *)
  let g2 = build "void main() { x = a[0] + a[1]; x = 0; }" in
  ignore (T.Simplify.minimize g);
  ignore (T.Simplify.minimize g2);
  Alcotest.(check bool) "dead adder removed" true
    ((G.stats g2).G.adds = 0 && (G.stats g2).G.fetches = 0);
  Alcotest.(check int) "live adder kept" 1 (G.stats g).G.adds

let test_strength_reduction () =
  let g = build "void main() { x = y * 8; z = y * 6; }" in
  ignore
    (T.Simplify.minimize ~passes:T.Simplify.extended_passes g);
  let s = G.stats g in
  (* y*8 becomes y<<3 (other_alu); y*6 stays a multiply *)
  Alcotest.(check int) "one multiply left" 1 s.G.multiplies;
  Alcotest.(check bool) "shift introduced" true (s.G.other_alu >= 1)

let test_reassociation_balances () =
  let g =
    build "void main() { x = a[0] + a[1] + a[2] + a[3] + a[4] + a[5] + a[6] + a[7]; }"
  in
  let before = (G.stats g).G.critical_path in
  ignore (T.Simplify.minimize g);
  let s = G.stats g in
  Alcotest.(check int) "adds preserved" 7 s.G.adds;
  (* the 7-add chain becomes a log2(8) = 3-level tree; the critical path
     also carries ss_in, FE, ST and ss_out *)
  Alcotest.(check bool) "depth reduced" true (s.G.critical_path < before);
  Alcotest.(check bool) "balanced" true (s.G.critical_path <= 7)

let alu_ops_of (s : G.stats) = s.G.adds + s.G.multiplies + s.G.other_alu

let test_hoist_shared_operand () =
  let g = build "void main() { if (c) { y = a[0] + k; } else { y = a[1] + k; } }" in
  ignore (T.Simplify.minimize ~passes:T.Simplify.extended_passes g);
  let s = G.stats g in
  Alcotest.(check int) "one mux" 1 s.G.muxes;
  Alcotest.(check int) "one add" 1 (alu_ops_of s);
  let memory_init = [ ("a", [| 5; 9 |]); ("c", [| 1 |]); ("k", [| 100 |]) ] in
  let result = Cdfg.Eval.run ~memory_init g in
  Alcotest.(check (option (list int))) "value" (Some [ 105 ])
    (Option.map Array.to_list (List.assoc_opt "y" result.Cdfg.Eval.memory))

let test_hoist_commutative () =
  (* op (s, t) vs op (f, s): sharing found through commutativity *)
  let g = build "void main() { if (c) { y = k + a[0]; } else { y = a[1] + k; } }" in
  ignore (T.Simplify.minimize ~passes:T.Simplify.extended_passes g);
  Alcotest.(check int) "one add after hoist" 1 (alu_ops_of (G.stats g));
  let memory_init = [ ("a", [| 5; 9 |]); ("c", [| 0 |]); ("k", [| 100 |]) ] in
  let result = Cdfg.Eval.run ~memory_init g in
  Alcotest.(check (option (list int))) "else branch" (Some [ 109 ])
    (Option.map Array.to_list (List.assoc_opt "y" result.Cdfg.Eval.memory))

let test_hoist_blocked_by_sharing () =
  (* both branch values are also stored elsewhere: hoisting would not
     remove work, so it must not fire *)
  let g =
    build
      "void main() { t0 = a[0] + k; t1 = a[1] + k; y = c ? t0 : t1; }"
  in
  ignore (T.Simplify.minimize ~passes:T.Simplify.extended_passes g);
  Alcotest.(check int) "both adds kept" 2 (alu_ops_of (G.stats g))

let test_hoist_nested_same_condition () =
  let g = build "void main() { y = c ? a[0] : (c ? a[1] : a[2]); }" in
  ignore (T.Simplify.minimize ~passes:T.Simplify.extended_passes g);
  Alcotest.(check int) "one mux left" 1 (G.stats g).G.muxes;
  let memory_init = [ ("a", [| 5; 9; 13 |]); ("c", [| 0 |]) ] in
  let result = Cdfg.Eval.run ~memory_init g in
  Alcotest.(check (option (list int))) "same condition dominates" (Some [ 13 ])
    (Option.map Array.to_list (List.assoc_opt "y" result.Cdfg.Eval.memory))

let test_fir_fig3_shape () =
  let g = build Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source in
  let report = T.Simplify.minimize g in
  let s = report.T.Simplify.after in
  Alcotest.(check int) "10 fetches (a0-a4, c0-c4)" 10 s.G.fetches;
  Alcotest.(check int) "2 stores (sum, i)" 2 s.G.stores;
  Alcotest.(check int) "5 multiplies" 5 s.G.multiplies;
  Alcotest.(check int) "4 adds" 4 s.G.adds;
  Alcotest.(check int) "no muxes" 0 s.G.muxes

let test_fixpoint_terminates () =
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let g = build k.Fpfa_kernels.Kernels.source in
      let report = T.Simplify.minimize g in
      Alcotest.(check bool)
        (k.Fpfa_kernels.Kernels.name ^ " converges quickly")
        true
        (report.T.Simplify.rounds < 20))
    Fpfa_kernels.Kernels.all

let test_simplify_never_grows () =
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let g = build k.Fpfa_kernels.Kernels.source in
      let report = T.Simplify.minimize g in
      Alcotest.(check bool)
        (k.Fpfa_kernels.Kernels.name ^ " shrinks")
        true
        (report.T.Simplify.after.G.total <= report.T.Simplify.before.G.total))
    Fpfa_kernels.Kernels.all

(* Property: the default pipeline preserves evaluation on generated
   programs. *)
let simplify_preserves_semantics =
  QCheck.Test.make ~name:"simplification preserves evaluation" ~count:250
    Gen.program (fun program ->
      let unrolled = Cfront.Unroll.unroll_program program in
      let g = Cdfg.Builder.build_func (List.hd unrolled) in
      let before = Cdfg.Eval.run ~memory_init:Gen.memory_init g in
      ignore (T.Simplify.minimize g);
      let after = Cdfg.Eval.run ~memory_init:Gen.memory_init g in
      Cdfg.Eval.equal_result before after)

(* Property: each individual pass in isolation preserves evaluation on
   random mapped graphs. *)
let each_pass_preserves =
  let passes =
    [
      T.Rewrites.const_fold; T.Rewrites.algebraic; T.Rewrites.strength_reduce;
      T.Cse.pass; T.Forward.store_to_fetch; T.Forward.dead_store; T.Dce.pass;
      T.Reassoc.pass; T.Hoist.pass;
    ]
  in
  QCheck.Test.make ~name:"every pass alone preserves evaluation" ~count:100
    (QCheck.make QCheck.Gen.(int_range 0 10_000))
    (fun seed ->
      let g = Fpfa_kernels.Random_graph.generate ~seed ~ops:40 () in
      let inputs = Fpfa_kernels.Random_graph.random_inputs g in
      let before = Cdfg.Eval.run ~memory_init:inputs g in
      List.for_all
        (fun pass ->
          let g' = G.copy g in
          ignore (run_pass pass g');
          let after = Cdfg.Eval.run ~memory_init:inputs g' in
          Cdfg.Eval.equal_result before after)
        passes)

let suite =
  [
    Alcotest.test_case "const fold binop" `Quick test_const_fold_binop;
    Alcotest.test_case "const fold mux" `Quick test_const_fold_mux;
    Alcotest.test_case "algebraic identities" `Quick test_algebraic_identities;
    Alcotest.test_case "mux same branches" `Quick test_mux_same_branches;
    Alcotest.test_case "cse fetches" `Quick test_cse_merges_fetches;
    Alcotest.test_case "cse commutative" `Quick test_cse_commutative;
    Alcotest.test_case "cse non-commutative" `Quick test_cse_does_not_merge_noncommutative;
    Alcotest.test_case "scalar forwarding" `Quick test_forwarding_scalar;
    Alcotest.test_case "skip other addresses" `Quick test_forwarding_skips_other_addresses;
    Alcotest.test_case "unknown offset blocks" `Quick test_forwarding_blocked_by_unknown_offset;
    Alcotest.test_case "dead store" `Quick test_dead_store_elimination;
    Alcotest.test_case "dead store + reader" `Quick test_dead_store_keeps_read_values;
    Alcotest.test_case "dce" `Quick test_dce_removes_unused;
    Alcotest.test_case "strength reduction" `Quick test_strength_reduction;
    Alcotest.test_case "reassociation" `Quick test_reassociation_balances;
    Alcotest.test_case "hoist shared" `Quick test_hoist_shared_operand;
    Alcotest.test_case "hoist commutative" `Quick test_hoist_commutative;
    Alcotest.test_case "hoist blocked" `Quick test_hoist_blocked_by_sharing;
    Alcotest.test_case "hoist nested" `Quick test_hoist_nested_same_condition;
    Alcotest.test_case "FIR Fig.3 shape" `Quick test_fir_fig3_shape;
    Alcotest.test_case "fixpoint terminates" `Quick test_fixpoint_terminates;
    Alcotest.test_case "simplify never grows" `Quick test_simplify_never_grows;
    QCheck_alcotest.to_alcotest simplify_preserves_semantics;
    QCheck_alcotest.to_alcotest each_pass_preserves;
  ]
