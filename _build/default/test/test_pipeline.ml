(* Unit tests for multi-configuration pipelines. *)

module Pipeline = Fpfa_core.Pipeline

let dsp_source =
  {|
void analyze() {
  peak = 0;
  for (i = 0; i < 8; i++) { peak = max(peak, abs(sig[i])); }
}
void normalize() {
  for (i = 0; i < 8; i++) {
    scaled[i] = (sig[i] << 4) / max(peak, 1);
  }
}
void smooth() {
  for (i = 0; i < 6; i++) {
    out[i] = (scaled[i] + scaled[i + 1] + scaled[i + 2]) / 3;
  }
}
|}

let dsp_inputs = [ ("sig", [| 4; -8; 15; -16; 23; -42; 7; 2 |]) ]
let dsp_stages = [ "analyze"; "normalize"; "smooth" ]

let test_three_stage_dsp () =
  Alcotest.(check bool) "verifies" true
    (Pipeline.verify ~memory_init:dsp_inputs dsp_source ~funcs:dsp_stages)

let test_region_handover () =
  let pipeline = Pipeline.map dsp_source ~funcs:dsp_stages in
  let final = Pipeline.run ~memory_init:dsp_inputs pipeline in
  (* peak computed in stage 1 must reach stage 2's division *)
  Alcotest.(check (option (list int))) "peak" (Some [ 42 ])
    (Option.map Array.to_list (List.assoc_opt "peak" final));
  Alcotest.(check (option (list int))) "scaled"
    (Some [ 1; -3; 5; -6; 8; -16; 2; 0 ])
    (Option.map Array.to_list (List.assoc_opt "scaled" final))

let test_costs_populated () =
  let pipeline = Pipeline.map dsp_source ~funcs:dsp_stages in
  Alcotest.(check int) "three stages" 3 (List.length pipeline.Pipeline.stages);
  List.iter
    (fun (s : Pipeline.stage) ->
      Alcotest.(check bool) "config words" true (s.Pipeline.config_words > 0);
      Alcotest.(check bool) "reconfig cycles consistent" true
        (s.Pipeline.reconfig_cycles
        = (s.Pipeline.config_words + Pipeline.config_words_per_cycle - 1)
          / Pipeline.config_words_per_cycle))
    pipeline.Pipeline.stages;
  Alcotest.(check int) "totals add up"
    pipeline.Pipeline.total_compute_cycles
    (Fpfa_util.Listx.sum
       (List.map (fun (s : Pipeline.stage) -> s.Pipeline.compute_cycles)
          pipeline.Pipeline.stages))

let test_single_stage_equals_flow () =
  let source = Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source in
  let memory_init = Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.inputs in
  Alcotest.(check bool) "single-stage pipeline verifies" true
    (Pipeline.verify ~memory_init source ~funcs:[ "main" ])

let test_stage_order_matters () =
  (* running normalize before analyze divides by max(0,1)=1 *)
  let forward = Pipeline.run ~memory_init:dsp_inputs
      (Pipeline.map dsp_source ~funcs:[ "analyze"; "normalize" ])
  in
  let backward = Pipeline.run ~memory_init:dsp_inputs
      (Pipeline.map dsp_source ~funcs:[ "normalize"; "analyze" ])
  in
  Alcotest.(check bool) "different scaled results" false
    (List.assoc "scaled" forward = List.assoc "scaled" backward);
  (* and the reference agrees with the tile in both orders *)
  Alcotest.(check bool) "backward verifies too" true
    (Pipeline.verify ~memory_init:dsp_inputs dsp_source
       ~funcs:[ "normalize"; "analyze" ])

let test_repeated_stage () =
  let source = "void bump() { for (k = 0; k < 4; k++) { v[k] = v[k] + 1; } }" in
  let memory_init = [ ("v", [| 0; 10; 20; 30 |]) ] in
  let pipeline = Pipeline.map source ~funcs:[ "bump"; "bump"; "bump" ] in
  let final = Pipeline.run ~memory_init pipeline in
  Alcotest.(check (option (list int))) "applied three times"
    (Some [ 3; 13; 23; 33 ])
    (Option.map Array.to_list (List.assoc_opt "v" final));
  Alcotest.(check bool) "verifies" true
    (Pipeline.verify ~memory_init source ~funcs:[ "bump"; "bump"; "bump" ])

let test_errors () =
  (match Pipeline.map dsp_source ~funcs:[] with
  | exception Pipeline.Pipeline_error _ -> ()
  | _ -> Alcotest.fail "empty pipeline accepted");
  (match Pipeline.map dsp_source ~funcs:[ "missing" ] with
  | exception Pipeline.Pipeline_error _ -> ()
  | _ -> Alcotest.fail "missing stage accepted");
  match Pipeline.map "void f() { while (u) { x = 1; } }" ~funcs:[ "f" ] with
  | exception Pipeline.Pipeline_error _ -> ()
  | _ -> Alcotest.fail "unmappable stage accepted"

let test_pipeline_with_calls () =
  let source =
    {|
int weight(int v) { return v * 3 - 1; }
void stage1() { for (i = 0; i < 4; i++) { t[i] = weight(x[i]); } }
void stage2() { s = 0; for (i = 0; i < 4; i++) { s = s + t[i]; } }
|}
  in
  let memory_init = [ ("x", [| 1; 2; 3; 4 |]) ] in
  Alcotest.(check bool) "inlined stages verify" true
    (Pipeline.verify ~memory_init source ~funcs:[ "stage1"; "stage2" ])

let test_reuse_pipeline () =
  (* each stage's counted loop becomes one reusable configuration *)
  let reuse = Pipeline.map_reuse dsp_source ~funcs:dsp_stages in
  Alcotest.(check int) "three stages" 3 (List.length reuse.Pipeline.rstages);
  List.iter
    (fun (s : Pipeline.reuse_stage) ->
      match s.Pipeline.outcome with
      | Fpfa_core.Loop_flow.Looped staged ->
        Alcotest.(check bool)
          (s.Pipeline.rname ^ " has a reused loop")
          true
          (Fpfa_core.Loop_flow.loops staged <> [])
      | Fpfa_core.Loop_flow.Unrolled _ ->
        Alcotest.fail (s.Pipeline.rname ^ " unexpectedly unrolled"))
    reuse.Pipeline.rstages;
  Alcotest.(check bool) "verifies" true
    (Pipeline.verify_reuse ~memory_init:dsp_inputs dsp_source
       ~funcs:dsp_stages)

let test_reuse_shrinks_configs () =
  let flat = Pipeline.map dsp_source ~funcs:dsp_stages in
  let reuse = Pipeline.map_reuse dsp_source ~funcs:dsp_stages in
  let flat_words =
    Fpfa_util.Listx.sum
      (List.map (fun (s : Pipeline.stage) -> s.Pipeline.config_words)
         flat.Pipeline.stages)
  in
  let reuse_words =
    Fpfa_util.Listx.sum
      (List.map (fun (s : Pipeline.reuse_stage) -> s.Pipeline.rconfig_words)
         reuse.Pipeline.rstages)
  in
  Alcotest.(check bool) "reuse configs smaller" true (reuse_words < flat_words);
  (* and both compute the same result *)
  let a = Pipeline.run ~memory_init:dsp_inputs flat in
  let b = Pipeline.run_reuse ~memory_init:dsp_inputs reuse in
  Alcotest.(check bool) "same scaled" true
    (List.assoc "scaled" a = List.assoc "scaled" b)

let suite =
  [
    Alcotest.test_case "three-stage dsp" `Quick test_three_stage_dsp;
    Alcotest.test_case "region handover" `Quick test_region_handover;
    Alcotest.test_case "costs" `Quick test_costs_populated;
    Alcotest.test_case "single stage" `Quick test_single_stage_equals_flow;
    Alcotest.test_case "order matters" `Quick test_stage_order_matters;
    Alcotest.test_case "repeated stage" `Quick test_repeated_stage;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "stages with calls" `Quick test_pipeline_with_calls;
    Alcotest.test_case "reuse pipeline" `Quick test_reuse_pipeline;
    Alcotest.test_case "reuse shrinks" `Quick test_reuse_shrinks_configs;
  ]
