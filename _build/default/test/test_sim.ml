(* Unit tests for the tile simulator, including fault injection: a tampered
   job must be rejected, proving the simulator really checks constraints. *)

module Arch = Fpfa_arch.Arch
module Job = Mapping.Job
module Sim = Fpfa_sim.Sim

let job_for (k : Fpfa_kernels.Kernels.t) =
  let result = Fpfa_core.Flow.map_source k.Fpfa_kernels.Kernels.source in
  (result.Fpfa_core.Flow.job, k.Fpfa_kernels.Kernels.inputs)

let test_kernel_conformance () =
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let job, memory_init = job_for k in
      Alcotest.(check bool)
        (k.Fpfa_kernels.Kernels.name ^ " conforms")
        true
        (Sim.conforms ~memory_init job))
    Fpfa_kernels.Kernels.all

let test_trace_counts () =
  let job, memory_init = job_for Fpfa_kernels.Kernels.fir_paper in
  let _, trace = Sim.run ~memory_init job in
  let metrics = Mapping.Metrics.of_job job in
  Alcotest.(check int) "moves agree with metrics" metrics.Mapping.Metrics.moves
    trace.Sim.moves_executed;
  Alcotest.(check int) "writes agree with metrics"
    metrics.Mapping.Metrics.mem_writes trace.Sim.writes_executed;
  Alcotest.(check bool) "bus within tile limit" true
    (trace.Sim.max_bus_per_cycle <= job.Job.tile.Arch.buses)

let test_unseeded_inputs_read_zero () =
  let job, _ = job_for Fpfa_kernels.Kernels.fir_paper in
  let memory, _ = Sim.run job in
  (* with all-zero inputs the FIR sum is zero *)
  match List.assoc_opt "sum" memory with
  | Some [| 0 |] -> ()
  | _ -> Alcotest.fail "expected zero sum"

let tamper f job =
  {
    job with
    Job.cycles =
      Array.map
        (fun (c : Job.cycle) -> f c)
        job.Job.cycles;
  }

let test_fault_two_bundles_one_pp () =
  let job, _ = job_for Fpfa_kernels.Kernels.fir_paper in
  let bad =
    tamper
      (fun c ->
        match c.Job.alu with
        | w :: rest -> { c with Job.alu = w :: w :: rest }
        | [] -> c)
      job
  in
  match Sim.run bad with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "duplicate bundle accepted"

let test_fault_read_port_conflict () =
  let job, _ = job_for Fpfa_kernels.Kernels.fir_paper in
  let bad =
    tamper
      (fun c ->
        match c.Job.moves with
        | m :: rest ->
          (* a second read of the same memory in the same cycle *)
          { c with Job.moves = m :: { m with Job.dst = { m.Job.dst with Job.index = 3 } } :: rest }
        | [] -> c)
      job
  in
  match Sim.run bad with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "read-port conflict accepted"

let test_fault_bus_overflow () =
  let tile = Arch.with_buses 1 Arch.paper_tile in
  let job, _ = job_for Fpfa_kernels.Kernels.fir_paper in
  (* shrink the tile under the job's feet: the simulator must notice *)
  let bad = { job with Job.tile } in
  match Sim.run bad with
  | exception Sim.Fault _ -> ()
  | _ ->
    (* jobs with <=1 transfer per cycle would legitimately pass; the FIR
       job has cycles with several transfers *)
    Alcotest.fail "bus overflow accepted"

let test_fault_write_race () =
  let job, _ = job_for Fpfa_kernels.Kernels.fir_paper in
  let bad =
    tamper
      (fun c ->
        match c.Job.alu with
        | w :: rest -> (
          match w.Job.writes with
          | wr :: _ ->
            (* duplicate the write: two writes race on one cell *)
            { c with Job.alu = { w with Job.writes = [ wr; wr ] } :: rest }
          | [] -> c)
        | [] -> c)
      job
  in
  match Sim.run bad with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "write race accepted"

let test_fault_missing_port_source () =
  let job, _ = job_for Fpfa_kernels.Kernels.fir_paper in
  let bad =
    tamper
      (fun c ->
        {
          c with
          Job.alu =
            List.map
              (fun (w : Job.alu_work) ->
                { w with Job.port_regs = []; port_imms = [] })
              c.Job.alu;
        })
      job
  in
  match Sim.run bad with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "missing port source accepted"

let test_deleted_read_faults () =
  (* hand-build a job that deletes a cell and then moves from it *)
  let g = Cdfg.Graph.create "t" in
  Cdfg.Graph.declare_region g "r" { Cdfg.Graph.size = Some 1; implicit = true };
  let ss = Cdfg.Graph.add g (Cdfg.Graph.Ss_in "r") [] in
  ignore (Cdfg.Graph.add g (Cdfg.Graph.Ss_out "r") [ ss ]);
  let loc = { Job.mpp = 0; mem = 0; addr = 0 } in
  let job =
    {
      Job.tile = Arch.paper_tile;
      graph = g;
      cycles =
        [|
          { Job.moves = []; copies = []; alu = [];
            deletes = [ { Job.dcluster = 0; dloc = loc; dcycle = 0 } ] };
          {
            Job.moves =
              [ { Job.src = loc; dst = { Job.pp = 0; bank = 0; index = 0 }; carried = 0; for_cluster = 0 } ];
            copies = [];
            alu = [];
            deletes = [];
          };
        |];
      region_homes = [ ("r", [ loc ]) ];
      region_sizes = [ ("r", 1) ];
      exec_cycle_of_level = [||];
    }
  in
  match Sim.run job with
  | exception Sim.Fault _ -> ()
  | _ -> Alcotest.fail "read of deleted word accepted"

let test_variants_conform () =
  List.iter
    (fun (v : Baseline.variant) ->
      let k = Fpfa_kernels.Kernels.dct4 in
      let result = Baseline.map_source v k.Fpfa_kernels.Kernels.source in
      Alcotest.(check bool)
        (v.Baseline.vname ^ " conforms")
        true
        (Sim.conforms ~memory_init:k.Fpfa_kernels.Kernels.inputs
           result.Fpfa_core.Flow.job))
    Baseline.all

let suite =
  [
    Alcotest.test_case "kernel conformance" `Quick test_kernel_conformance;
    Alcotest.test_case "trace counts" `Quick test_trace_counts;
    Alcotest.test_case "unseeded zero" `Quick test_unseeded_inputs_read_zero;
    Alcotest.test_case "fault: two bundles" `Quick test_fault_two_bundles_one_pp;
    Alcotest.test_case "fault: read port" `Quick test_fault_read_port_conflict;
    Alcotest.test_case "fault: bus overflow" `Quick test_fault_bus_overflow;
    Alcotest.test_case "fault: write race" `Quick test_fault_write_race;
    Alcotest.test_case "fault: missing source" `Quick test_fault_missing_port_source;
    Alcotest.test_case "fault: deleted read" `Quick test_deleted_read_faults;
    Alcotest.test_case "variants conform" `Quick test_variants_conform;
  ]
