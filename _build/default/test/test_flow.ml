(* Integration + property tests for the end-to-end flow. *)

module Flow = Fpfa_core.Flow
module Metrics = Mapping.Metrics

let test_all_kernels_verify () =
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let result = Flow.map_source k.Fpfa_kernels.Kernels.source in
      Alcotest.(check bool)
        (k.Fpfa_kernels.Kernels.name ^ " verifies")
        true
        (Flow.verify ~memory_init:k.Fpfa_kernels.Kernels.inputs result))
    Fpfa_kernels.Kernels.all

let test_all_variants_verify () =
  let k = Fpfa_kernels.Kernels.fir ~taps:8 in
  List.iter
    (fun (v : Baseline.variant) ->
      let result = Baseline.map_source v k.Fpfa_kernels.Kernels.source in
      Alcotest.(check bool)
        (v.Baseline.vname ^ " verifies")
        true
        (Flow.verify ~memory_init:k.Fpfa_kernels.Kernels.inputs result))
    Baseline.all

let test_deterministic () =
  let k = Fpfa_kernels.Kernels.dct4 in
  let r1 = Flow.map_source k.Fpfa_kernels.Kernels.source in
  let r2 = Flow.map_source k.Fpfa_kernels.Kernels.source in
  Alcotest.(check int) "same cycles" r1.Flow.metrics.Metrics.cycles
    r2.Flow.metrics.Metrics.cycles;
  Alcotest.(check int) "same moves" r1.Flow.metrics.Metrics.moves
    r2.Flow.metrics.Metrics.moves

let test_speedup_over_sequential () =
  (* Section VII: "high performance by exploiting maximum parallelism" —
     on a wide kernel the 5-PP tile must beat the 1-ALU tile. *)
  let k = Fpfa_kernels.Kernels.clip ~n:6 in
  let paper = Baseline.map_source Baseline.paper k.Fpfa_kernels.Kernels.source in
  let seq =
    Baseline.map_source Baseline.sequential k.Fpfa_kernels.Kernels.source
  in
  Alcotest.(check bool) "tile beats sequential" true
    (paper.Flow.metrics.Metrics.cycles < seq.Flow.metrics.Metrics.cycles)

let test_locality_saves_energy () =
  (* Section VII: "low power consumption by locality of reference". *)
  let k = Fpfa_kernels.Kernels.vector_scale ~n:8 in
  let local = Baseline.map_source Baseline.paper k.Fpfa_kernels.Kernels.source in
  let scattered =
    Baseline.map_source Baseline.no_locality k.Fpfa_kernels.Kernels.source
  in
  Alcotest.(check bool) "locality ratio higher" true
    (local.Flow.metrics.Metrics.locality
    > scattered.Flow.metrics.Metrics.locality);
  Alcotest.(check bool) "energy lower" true
    (local.Flow.metrics.Metrics.energy < scattered.Flow.metrics.Metrics.energy)

let test_datapath_clustering_beats_unit_ops () =
  let k = Fpfa_kernels.Kernels.fir ~taps:16 in
  let paper = Baseline.map_source Baseline.paper k.Fpfa_kernels.Kernels.source in
  let unit =
    Baseline.map_source Baseline.unit_ops k.Fpfa_kernels.Kernels.source
  in
  Alcotest.(check bool) "fused clusters take fewer cycles" true
    (paper.Flow.metrics.Metrics.cycles <= unit.Flow.metrics.Metrics.cycles);
  Alcotest.(check bool) "and fewer memory writes" true
    (paper.Flow.metrics.Metrics.mem_writes < unit.Flow.metrics.Metrics.mem_writes)

let test_flow_errors () =
  let expect source =
    match Flow.map_source source with
    | exception Flow.Flow_error _ -> ()
    | _ -> Alcotest.fail ("expected flow error: " ^ source)
  in
  expect "void main() { x = ; }";
  (* syntax *)
  expect "void main() { x = foo(1); }";
  (* sema *)
  expect "void main() { while (u) { x = 1; } }";
  (* residual loop *)
  expect "void main() { x = a[u]; }";
  (* dynamic offset *)
  expect "int main() { if (c) { return 1; } return 0; }"

let test_missing_function () =
  match Flow.map_source ~func:"nope" "void main() { x = 1; }" with
  | exception Flow.Flow_error _ -> ()
  | _ -> Alcotest.fail "missing function accepted"

let test_map_graph_entry () =
  let g = Fpfa_kernels.Random_graph.generate ~seed:3 ~ops:30 () in
  let result = Flow.map_graph g in
  let memory_init = Fpfa_kernels.Random_graph.random_inputs g in
  Alcotest.(check bool) "random graph maps and conforms" true
    (Fpfa_sim.Sim.conforms ~memory_init result.Flow.job)

let test_unroll_budget_respected () =
  let config = { Flow.default_config with Flow.max_unroll = 4 } in
  match
    Flow.map_source ~config
      "void main() { s = 0; for (i = 0; i < 100; i++) { s = s + i; } }"
  with
  | exception Flow.Flow_error _ -> ()
  | _ -> Alcotest.fail "unroll budget ignored"

(* Property: the complete flow verifies on random mappable programs — the
   headline invariant of the whole library. *)
let flow_verifies_random_programs =
  QCheck.Test.make ~name:"flow verifies on random programs" ~count:120
    Gen.program (fun program ->
      let source = Cfront.Ast.program_to_string program in
      let result = Flow.map_source source in
      Flow.verify ~memory_init:Gen.memory_init result)

(* Property: the flow verifies on random DAGs under every variant. *)
let flow_verifies_random_graphs =
  QCheck.Test.make ~name:"all variants verify on random graphs" ~count:40
    (QCheck.make QCheck.Gen.(int_range 0 3_000))
    (fun seed ->
      let g = Fpfa_kernels.Random_graph.generate ~seed ~ops:45 () in
      let memory_init = Fpfa_kernels.Random_graph.random_inputs g in
      List.for_all
        (fun (v : Baseline.variant) ->
          let result = Baseline.map_graph v g in
          Fpfa_sim.Sim.conforms ~memory_init result.Flow.job)
        Baseline.all)

let suite =
  [
    Alcotest.test_case "kernels verify" `Quick test_all_kernels_verify;
    Alcotest.test_case "variants verify" `Quick test_all_variants_verify;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "speedup" `Quick test_speedup_over_sequential;
    Alcotest.test_case "locality energy" `Quick test_locality_saves_energy;
    Alcotest.test_case "datapath clustering" `Quick test_datapath_clustering_beats_unit_ops;
    Alcotest.test_case "flow errors" `Quick test_flow_errors;
    Alcotest.test_case "missing function" `Quick test_missing_function;
    Alcotest.test_case "map_graph" `Quick test_map_graph_entry;
    Alcotest.test_case "unroll budget" `Quick test_unroll_budget_respected;
    QCheck_alcotest.to_alcotest flow_verifies_random_programs;
    QCheck_alcotest.to_alcotest flow_verifies_random_graphs;
  ]
