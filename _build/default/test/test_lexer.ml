(* Unit tests for the C-subset lexer. *)

let tokens source = List.map fst (Cfront.Lexer.tokenize source)

let token_strings source =
  List.map Cfront.Token.to_string (tokens source)

let check = Alcotest.(check (list string))

let test_keywords () =
  check "keywords"
    [ "int"; "void"; "if"; "else"; "while"; "for"; "return"; "<eof>" ]
    (token_strings "int void if else while for return")

let test_identifiers () =
  check "identifiers vs keywords"
    [ "inty"; "whilex"; "_a1"; "<eof>" ]
    (token_strings "inty whilex _a1")

let test_numbers () =
  match tokens "0 42 007" with
  | [ Cfront.Token.Int_lit 0; Int_lit 42; Int_lit 7; Eof ] -> ()
  | _ -> Alcotest.fail "number lexing"

let test_operators_longest_match () =
  check "multi-char operators"
    [ "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "++"; "--"; "+="; "<eof>" ]
    (token_strings "<< >> <= >= == != && || ++ -- +=")

let test_operator_adjacency () =
  (* <<= is lexed << then =; a<-b is a < - b. *)
  check "adjacent ops" [ "<<"; "="; "a"; "<"; "-"; "b"; "<eof>" ]
    (token_strings "<<= a<-b")

let test_punctuation () =
  check "punctuation"
    [ "("; ")"; "["; "]"; "{"; "}"; "?"; ":"; ","; ";"; "<eof>" ]
    (token_strings "()[]{}?:,;")

let test_line_comments () =
  check "line comment skipped" [ "a"; "b"; "<eof>" ]
    (token_strings "a // comment ; int\nb")

let test_block_comments () =
  check "block comment skipped" [ "a"; "b"; "<eof>" ]
    (token_strings "a /* while (x) { */ b");
  check "multiline block" [ "x"; "<eof>" ] (token_strings "/* 1\n2\n3 */ x")

let test_preprocessor_skipped () =
  check "preprocessor lines skipped" [ "y"; "<eof>" ]
    (token_strings "#include <stdio.h>\ny")

let test_positions () =
  let toks = Cfront.Lexer.tokenize "a\n  b" in
  match toks with
  | [ (_, p1); (_, p2); _ ] ->
    Alcotest.(check (pair int int)) "first" (1, 1) (p1.Cfront.Token.line, p1.Cfront.Token.col);
    Alcotest.(check (pair int int)) "second" (2, 3) (p2.Cfront.Token.line, p2.Cfront.Token.col)
  | _ -> Alcotest.fail "expected three tokens"

let test_unterminated_comment () =
  Alcotest.check_raises "unterminated comment"
    (Cfront.Lexer.Error ("unterminated comment", { Cfront.Token.line = 1; col = 3 }))
    (fun () -> ignore (Cfront.Lexer.tokenize "x /* never closed"))

let test_bad_character () =
  match Cfront.Lexer.tokenize "a $ b" with
  | exception Cfront.Lexer.Error (msg, _) ->
    Alcotest.(check bool) "mentions char" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected lexer error"

let test_empty_input () =
  match tokens "" with
  | [ Cfront.Token.Eof ] -> ()
  | _ -> Alcotest.fail "empty input should give EOF only"

let test_token_equal () =
  Alcotest.(check bool) "int lits" true
    (Cfront.Token.equal (Cfront.Token.Int_lit 3) (Cfront.Token.Int_lit 3));
  Alcotest.(check bool) "different lits" false
    (Cfront.Token.equal (Cfront.Token.Int_lit 3) (Cfront.Token.Int_lit 4));
  Alcotest.(check bool) "idents" false
    (Cfront.Token.equal (Cfront.Token.Ident "a") (Cfront.Token.Ident "b"))

let suite =
  [
    Alcotest.test_case "keywords" `Quick test_keywords;
    Alcotest.test_case "identifiers" `Quick test_identifiers;
    Alcotest.test_case "numbers" `Quick test_numbers;
    Alcotest.test_case "longest match" `Quick test_operators_longest_match;
    Alcotest.test_case "adjacency" `Quick test_operator_adjacency;
    Alcotest.test_case "punctuation" `Quick test_punctuation;
    Alcotest.test_case "line comments" `Quick test_line_comments;
    Alcotest.test_case "block comments" `Quick test_block_comments;
    Alcotest.test_case "preprocessor" `Quick test_preprocessor_skipped;
    Alcotest.test_case "positions" `Quick test_positions;
    Alcotest.test_case "unterminated comment" `Quick test_unterminated_comment;
    Alcotest.test_case "bad character" `Quick test_bad_character;
    Alcotest.test_case "empty input" `Quick test_empty_input;
    Alcotest.test_case "token equality" `Quick test_token_equal;
  ]
