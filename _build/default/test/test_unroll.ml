(* Unit + property tests for the partial-evaluation loop unroller. *)

module Ast = Cfront.Ast
module Unroll = Cfront.Unroll
module Interp = Cfront.Interp

let parse source =
  match Cfront.Parser.parse_program source with
  | [ f ] -> f
  | _ -> Alcotest.fail "expected one function"

let has_loop body =
  let rec stmt_has = function
    | Ast.While _ -> true
    | Ast.If (_, t, e) -> List.exists stmt_has t || List.exists stmt_has e
    | Ast.Decl _ | Ast.Assign _ | Ast.Return _ | Ast.Expr _ -> false
  in
  List.exists stmt_has body

let test_full_unroll () =
  let f = parse Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source in
  let f' = Unroll.unroll_func f in
  Alcotest.(check bool) "no residual loop" false (has_loop f'.Ast.body);
  (* 2 init statements + 5 iterations x 2 statements *)
  Alcotest.(check int) "statement count" 12 (Ast.stmt_count f'.Ast.body)

let test_zero_trip () =
  let f = parse "void main() { i = 9; while (i < 5) { x = 1; i++; } }" in
  let f' = Unroll.unroll_func f in
  Alcotest.(check int) "loop dropped" 1 (Ast.stmt_count f'.Ast.body)

let test_decl_without_init_counts_as_zero () =
  let f = parse "void main() { int i; while (i < 3) { i = i + 1; } }" in
  let f' = Unroll.unroll_func f in
  Alcotest.(check bool) "unrolled from 0" false (has_loop f'.Ast.body);
  Alcotest.(check int) "3 iterations + decl" 4 (Ast.stmt_count f'.Ast.body)

let test_static_if_resolution () =
  let f = parse "void main() { k = 3; if (k > 2) { x = 1; } else { x = 2; } }" in
  let f' = Unroll.unroll_func f in
  match f'.Ast.body with
  | [ _; Ast.Assign (Ast.Lvar "x", Ast.Int_lit 1) ] -> ()
  | _ -> Alcotest.fail "static if should resolve to its then-branch"

let test_dynamic_if_kills_knowledge () =
  (* After an if with unknown condition assigning i, the following loop
     cannot be unrolled. *)
  let f =
    parse
      "void main() { i = 0; if (u) { i = 5; } while (i < 2) { i = i + 1; } }"
  in
  let f' = Unroll.unroll_func f in
  Alcotest.(check bool) "residual loop stays" true (has_loop f'.Ast.body)

let test_nested_loops () =
  let f =
    parse
      "void main() { s = 0; for (i = 0; i < 3; i++) { for (j = 0; j < 2; j++) { s = s + 1; } } }"
  in
  let f' = Unroll.unroll_func f in
  Alcotest.(check bool) "fully unrolled" false (has_loop f'.Ast.body)

let test_knowledge_lost_mid_loop () =
  (* The counter is overwritten from an array: knowledge is lost after one
     peel and the residual loop is kept. *)
  let f = parse "void main() { i = 0; while (i < 4) { i = a[0]; } }" in
  let f' = Unroll.unroll_func f in
  Alcotest.(check bool) "residual loop" true (has_loop f'.Ast.body)

let test_budget () =
  let f = parse "void main() { i = 0; while (i < 100) { i = i + 1; } }" in
  match Unroll.unroll_func ~max_iterations:10 f with
  | exception Unroll.Too_many_iterations _ -> ()
  | _ -> Alcotest.fail "expected unroll budget exhaustion"

let test_eval_const_expr () =
  let lookup = function "x" -> Some 5 | _ -> None in
  let e = Cfront.Parser.parse_expr "x * 2 + 1" in
  Alcotest.(check (option int)) "known" (Some 11) (Unroll.eval_const_expr lookup e);
  let e = Cfront.Parser.parse_expr "y + 1" in
  Alcotest.(check (option int)) "unknown" None (Unroll.eval_const_expr lookup e);
  let e = Cfront.Parser.parse_expr "x / 0" in
  Alcotest.(check (option int)) "total division" (Some 0)
    (Unroll.eval_const_expr lookup e);
  let e = Cfront.Parser.parse_expr "1 ? x : y" in
  Alcotest.(check (option int)) "cond picks known branch" (Some 5)
    (Unroll.eval_const_expr lookup e)

let test_unroll_preserves_fir () =
  let k = Fpfa_kernels.Kernels.fir_paper in
  let program = Cfront.Parser.parse_program k.Fpfa_kernels.Kernels.source in
  let st = Interp.run_main ~array_init:k.Fpfa_kernels.Kernels.inputs program in
  let st' =
    Interp.run_main ~array_init:k.Fpfa_kernels.Kernels.inputs
      (Unroll.unroll_program program)
  in
  Alcotest.(check bool) "same final state" true (Interp.equal_state st st')

(* Property: unrolling never changes the interpreter's final state. *)
let unroll_preserves_semantics =
  QCheck.Test.make ~name:"unroll preserves semantics" ~count:300 Gen.program
    (fun program ->
      let st =
        Interp.run_main ~array_init:Gen.array_inputs
          ~scalar_init:Gen.scalar_inputs program
      in
      let st' =
        Interp.run_main ~array_init:Gen.array_inputs
          ~scalar_init:Gen.scalar_inputs
          (Unroll.unroll_program program)
      in
      Interp.equal_state st st')

(* Property: unrolled mappable programs contain no residual loops. *)
let unroll_is_complete =
  QCheck.Test.make ~name:"unroll eliminates bounded loops" ~count:300
    Gen.program (fun program ->
      List.for_all
        (fun (f : Ast.func) -> not (has_loop f.Ast.body))
        (Unroll.unroll_program program))

let suite =
  [
    Alcotest.test_case "full unroll" `Quick test_full_unroll;
    Alcotest.test_case "zero trip" `Quick test_zero_trip;
    Alcotest.test_case "decl is zero" `Quick test_decl_without_init_counts_as_zero;
    Alcotest.test_case "static if" `Quick test_static_if_resolution;
    Alcotest.test_case "dynamic if" `Quick test_dynamic_if_kills_knowledge;
    Alcotest.test_case "nested loops" `Quick test_nested_loops;
    Alcotest.test_case "knowledge lost" `Quick test_knowledge_lost_mid_loop;
    Alcotest.test_case "budget" `Quick test_budget;
    Alcotest.test_case "const eval" `Quick test_eval_const_expr;
    Alcotest.test_case "fir preserved" `Quick test_unroll_preserves_fir;
    QCheck_alcotest.to_alcotest unroll_preserves_semantics;
    QCheck_alcotest.to_alcotest unroll_is_complete;
  ]
