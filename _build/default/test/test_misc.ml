(* Coverage for the remaining surfaces: DOT exports, pretty printers, the
   pass wrapper, kernel reference states, encode versioning. *)

let contains text needle =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length text
    && (String.sub text i n = needle || find (i + 1))
  in
  find 0

let test_cdfg_dot () =
  let g =
    Cdfg.Builder.build_program
      Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source
  in
  let text = Cdfg.Dot.to_string g in
  Alcotest.(check bool) "digraph" true (contains text "digraph");
  Alcotest.(check bool) "fetch nodes" true (contains text "FE a");
  Alcotest.(check bool) "store nodes" true (contains text "ST sum");
  Alcotest.(check bool) "statespace endpoints" true (contains text "ss_in");
  (* every node declared exactly once *)
  Cdfg.Graph.iter g (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d present" n.Cdfg.Graph.id)
        true
        (contains text (Printf.sprintf "n%d [" n.Cdfg.Graph.id)))

let test_cluster_dot () =
  let result =
    Fpfa_core.Flow.map_source
      Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source
  in
  let text = Mapping.Cluster.to_dot result.Fpfa_core.Flow.clustering in
  Alcotest.(check bool) "digraph" true (contains text "digraph");
  Array.iter
    (fun (c : Mapping.Cluster.cluster) ->
      Alcotest.(check bool)
        (Printf.sprintf "cluster %d present" c.Mapping.Cluster.cid)
        true
        (contains text (Printf.sprintf "c%d [" c.Mapping.Cluster.cid)))
    result.Fpfa_core.Flow.clustering.Mapping.Cluster.clusters

let test_pass_checked_catches_breakage () =
  (* a deliberately invariant-breaking pass must be caught by [checked] *)
  let vandal =
    {
      Transform.Pass.name = "vandal";
      run =
        (fun g ->
          (* point a fetch's token at a value node: type violation *)
          let victim =
            Cdfg.Graph.fold g ~init:None ~f:(fun acc n ->
                match n.Cdfg.Graph.kind with
                | Cdfg.Graph.Fe _ -> Some n.Cdfg.Graph.id
                | _ -> acc)
          in
          match victim with
          | Some fe ->
            let const = Cdfg.Graph.add g (Cdfg.Graph.Const 0) [] in
            Cdfg.Graph.set_inputs g fe
              [ const; List.nth (Cdfg.Graph.inputs g fe) 1 ];
            true
          | None -> false);
    }
  in
  let g = Cdfg.Builder.build_program "void main() { x = a[0]; }" in
  match (Transform.Pass.checked vandal).Transform.Pass.run g with
  | exception Cdfg.Graph.Invalid _ -> ()
  | _ -> Alcotest.fail "checked pass let an invalid graph through"

let test_fixpoint_bound () =
  (* a pass that always reports change must hit the round bound *)
  let restless = { Transform.Pass.name = "restless"; run = (fun _ -> true) } in
  let g = Cdfg.Builder.build_program "void main() { x = 1; }" in
  match Transform.Pass.run_fixpoint ~max_rounds:5 [ restless ] g with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "non-converging pipeline not detected"

let test_kernel_reference_states () =
  (* the corpus's reference states agree with the CDFG evaluator *)
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let state = Fpfa_kernels.Kernels.reference_state k in
      let g = Cdfg.Builder.build_program k.Fpfa_kernels.Kernels.source in
      let result =
        Cdfg.Eval.run ~memory_init:k.Fpfa_kernels.Kernels.inputs g
      in
      Alcotest.(check bool)
        (k.Fpfa_kernels.Kernels.name ^ " reference agrees")
        true
        (Cdfg.Eval.conforms_to_interp
           ~memory_init:k.Fpfa_kernels.Kernels.inputs state result))
    Fpfa_kernels.Kernels.all

let test_encode_version_rejected () =
  let job =
    (Fpfa_core.Flow.map_source
       Fpfa_kernels.Kernels.dct4.Fpfa_kernels.Kernels.source)
      .Fpfa_core.Flow.job
  in
  let image = Bytes.of_string (Mapping.Encode.to_string job) in
  (* byte 6 is the format version (after the u16-length + 4-byte magic) *)
  Bytes.set image 6 '\xff';
  match Mapping.Encode.of_string (Bytes.to_string image) with
  | exception Mapping.Encode.Corrupt _ -> ()
  | _ -> Alcotest.fail "wrong version accepted"

let test_flow_summary_prints () =
  let result =
    Fpfa_core.Flow.map_source
      Fpfa_kernels.Kernels.dct4.Fpfa_kernels.Kernels.source
  in
  let text = Format.asprintf "%a" Fpfa_core.Flow.pp_summary result in
  Alcotest.(check bool) "mentions clusters" true (contains text "clusters");
  let job_text = Format.asprintf "%a" Mapping.Job.pp result.Fpfa_core.Flow.job in
  Alcotest.(check bool) "job listing has cycles" true (contains text "cycles");
  Alcotest.(check bool) "job listing has regions" true
    (contains job_text "region")

let test_prng_pick_empty () =
  let rng = Fpfa_util.Prng.create 1 in
  match Fpfa_util.Prng.pick rng [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pick on empty list accepted"

let suite =
  [
    Alcotest.test_case "cdfg dot" `Quick test_cdfg_dot;
    Alcotest.test_case "cluster dot" `Quick test_cluster_dot;
    Alcotest.test_case "pass checked" `Quick test_pass_checked_catches_breakage;
    Alcotest.test_case "fixpoint bound" `Quick test_fixpoint_bound;
    Alcotest.test_case "kernel references" `Quick test_kernel_reference_states;
    Alcotest.test_case "encode version" `Quick test_encode_version_rejected;
    Alcotest.test_case "summary prints" `Quick test_flow_summary_prints;
    Alcotest.test_case "prng pick empty" `Quick test_prng_pick_empty;
  ]
