(* Unit tests for the AST -> CDFG builder. *)

module G = Cdfg.Graph
module Builder = Cdfg.Builder
module Eval = Cdfg.Eval

let build source = Builder.build_program source

let eval ?memory_init source = Eval.run ?memory_init (build source)

let region result name =
  match List.assoc_opt name result.Eval.memory with
  | Some arr -> Array.to_list arr
  | None -> Alcotest.fail ("no region " ^ name)

let test_regions_declared () =
  let g = build "void main() { s = a[0] + 1; int b[3]; b[0] = s; }" in
  let info name = Option.get (G.region_info g name) in
  Alcotest.(check bool) "scalar size 1" true ((info "s").G.size = Some 1);
  Alcotest.(check bool) "implicit array unsized" true ((info "a").G.size = None);
  Alcotest.(check bool) "declared array sized" true ((info "b").G.size = Some 3);
  Alcotest.(check bool) "a implicit" true (info "a").G.implicit;
  Alcotest.(check bool) "b declared" false (info "b").G.implicit

let test_every_region_has_endpoints () =
  let g = build "void main() { x = a[1] * 2; }" in
  List.iter
    (fun (r, _) ->
      Alcotest.(check bool) ("ss_in " ^ r) true (G.ss_in_of g r <> None);
      Alcotest.(check bool) ("ss_out " ^ r) true (G.ss_out_of g r <> None))
    (G.regions g)

let test_reads_become_fetches () =
  let g = build "void main() { x = a[0] + a[0]; }" in
  let s = G.stats g in
  (* naive translation: one FE per read, no CSE yet *)
  Alcotest.(check int) "two fetches" 2 s.G.fetches;
  Alcotest.(check int) "one store" 1 s.G.stores

let test_store_ordering_after_read () =
  (* x = x + 1 must fetch the old x before storing the new one; the
     anti-dependence shows up as an order edge on the store. *)
  let g = build "void main() { x = x + 1; }" in
  let store =
    G.fold g ~init:None ~f:(fun acc n ->
        match n.G.kind with G.St "x" -> Some n.G.id | _ -> acc)
  in
  match store with
  | Some st ->
    Alcotest.(check bool) "store ordered after the fetch" true
      (G.order_after g st <> [])
  | None -> Alcotest.fail "no store"

let test_if_conversion_produces_mux () =
  let g = build "void main() { if (c) { x = 1; } else { x = 2; } }" in
  let s = G.stats g in
  Alcotest.(check bool) "muxes present" true (s.G.muxes >= 2);
  (* Both branches execute speculatively: two stores to x. *)
  Alcotest.(check int) "stores" 2 s.G.stores

let test_if_conversion_semantics () =
  let source = "void main() { if (c > 0) { x = 1; } else { x = 2; } }" in
  let taken = eval ~memory_init:[ ("c", [| 5 |]) ] source in
  Alcotest.(check (list int)) "then" [ 1 ] (region taken "x");
  let not_taken = eval ~memory_init:[ ("c", [| -5 |]) ] source in
  Alcotest.(check (list int)) "else" [ 2 ] (region not_taken "x")

let test_nested_if_predicates () =
  let source =
    "void main() { x = 0; if (a > 0) { if (b > 0) { x = 3; } } }"
  in
  let both = eval ~memory_init:[ ("a", [| 1 |]); ("b", [| 1 |]) ] source in
  Alcotest.(check (list int)) "both true" [ 3 ] (region both "x");
  let outer_only = eval ~memory_init:[ ("a", [| 1 |]); ("b", [| 0 |]) ] source in
  Alcotest.(check (list int)) "inner false" [ 0 ] (region outer_only "x")

let test_predicated_array_store () =
  let source = "void main() { if (c) { a[1] = 9; } }" in
  let on = eval ~memory_init:[ ("c", [| 1 |]); ("a", [| 4; 5 |]) ] source in
  Alcotest.(check (list int)) "written" [ 4; 9 ] (region on "a");
  let off = eval ~memory_init:[ ("c", [| 0 |]); ("a", [| 4; 5 |]) ] source in
  Alcotest.(check (list int)) "kept" [ 4; 5 ] (region off "a")

let test_residual_loop_rejected () =
  match Builder.build_func (List.hd (Cfront.Parser.parse_program
      "void main() { while (u) { x = 1; } }"))
  with
  | exception Builder.Unsupported _ -> ()
  | _ -> Alcotest.fail "residual loop accepted"

let test_predicated_return_rejected () =
  match Builder.build_func (List.hd (Cfront.Parser.parse_program
      "int main() { if (c) { return 1; } return 0; }"))
  with
  | exception Builder.Unsupported _ -> ()
  | _ -> Alcotest.fail "conditional return accepted"

let test_return_output () =
  let g = build "int main() { x = 5; return x * 2; }" in
  Alcotest.(check bool) "return output registered" true
    (List.mem_assoc "return" (G.outputs g));
  let result = Eval.run g in
  Alcotest.(check (option int)) "value" (Some 10)
    (List.assoc_opt "return" result.Eval.named)

let test_delete_locals () =
  let f = List.hd (Cfront.Parser.parse_program
      "void main() { int tmp; tmp = a[0]; b[0] = tmp; }")
  in
  let g = Builder.build_func ~delete_locals:true f in
  let s = G.stats g in
  Alcotest.(check int) "DEL for the declared scalar" 1 s.G.deletes;
  (* the deleted local reads back as zero in the materialised memory *)
  let result = Eval.run ~memory_init:[ ("a", [| 7 |]) ] g in
  Alcotest.(check (list int)) "b carries the value" [ 7 ] (region result "b");
  Alcotest.(check (list int)) "tmp deleted" [ 0 ] (region result "tmp")

let test_intrinsics_expand () =
  let result = eval ~memory_init:[ ("v", [| -9 |]) ]
      "void main() { x = abs(v); y = min(v, 3); z = max(v, 3); }"
  in
  Alcotest.(check (list int)) "abs" [ 9 ] (region result "x");
  Alcotest.(check (list int)) "min" [ -9 ] (region result "y");
  Alcotest.(check (list int)) "max" [ 3 ] (region result "z")

let test_builder_validates () =
  (* every built graph passes validation *)
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let program =
        Cfront.Unroll.unroll_program
          (Cfront.Parser.parse_program k.Fpfa_kernels.Kernels.source)
      in
      let g = Builder.build_func (List.hd program) in
      G.validate g)
    Fpfa_kernels.Kernels.all

let suite =
  [
    Alcotest.test_case "regions" `Quick test_regions_declared;
    Alcotest.test_case "ss endpoints" `Quick test_every_region_has_endpoints;
    Alcotest.test_case "fetch per read" `Quick test_reads_become_fetches;
    Alcotest.test_case "anti-dependence" `Quick test_store_ordering_after_read;
    Alcotest.test_case "if-conversion muxes" `Quick test_if_conversion_produces_mux;
    Alcotest.test_case "if semantics" `Quick test_if_conversion_semantics;
    Alcotest.test_case "nested predicates" `Quick test_nested_if_predicates;
    Alcotest.test_case "predicated store" `Quick test_predicated_array_store;
    Alcotest.test_case "residual loop" `Quick test_residual_loop_rejected;
    Alcotest.test_case "predicated return" `Quick test_predicated_return_rejected;
    Alcotest.test_case "return output" `Quick test_return_output;
    Alcotest.test_case "delete locals" `Quick test_delete_locals;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics_expand;
    Alcotest.test_case "kernels validate" `Quick test_builder_validates;
  ]
