(* Unit tests for the architecture description. *)

module Arch = Fpfa_arch.Arch

let test_paper_tile_matches_paper () =
  let t = Arch.paper_tile in
  Alcotest.(check int) "5 PPs" 5 t.Arch.alu_count;
  Alcotest.(check int) "4 banks (Ra-Rd)" 4 t.Arch.banks_per_pp;
  Alcotest.(check int) "4 registers per bank" 4 t.Arch.regs_per_bank;
  Alcotest.(check int) "2 memories" 2 t.Arch.memories_per_pp;
  Alcotest.(check int) "512 entries" 512 t.Arch.memory_size;
  Alcotest.(check int) "window 4 (Fig.5: 4,3,2,1 steps)" 4 t.Arch.move_window;
  Arch.validate t

let test_alu_caps () =
  Alcotest.(check int) "4 inputs" 4 Arch.paper_alu.Arch.max_inputs;
  Alcotest.(check int) "1 multiplier" 1 Arch.paper_alu.Arch.max_multipliers;
  Alcotest.(check int) "unit alu 1 op" 1 Arch.unit_alu.Arch.max_ops

let test_with_updates () =
  let t = Arch.with_alu_count 3 Arch.paper_tile in
  Alcotest.(check int) "alu count" 3 t.Arch.alu_count;
  let t = Arch.with_buses 7 t in
  Alcotest.(check int) "buses" 7 t.Arch.buses;
  let t = Arch.with_move_window 2 t in
  Alcotest.(check int) "window" 2 t.Arch.move_window;
  let t = Arch.with_alu Arch.unit_alu t in
  Alcotest.(check int) "alu swapped" 1 t.Arch.alu.Arch.max_ops;
  Arch.validate t

let test_validation_rejects () =
  let expect tile =
    match Arch.validate tile with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid tile accepted"
  in
  expect (Arch.with_alu_count 0 Arch.paper_tile);
  expect (Arch.with_buses (-1) Arch.paper_tile);
  expect { Arch.paper_tile with Arch.memory_size = 0 };
  expect
    {
      Arch.paper_tile with
      Arch.alu = { Arch.paper_alu with Arch.max_inputs = 9 };
    }

let suite =
  [
    Alcotest.test_case "paper tile" `Quick test_paper_tile_matches_paper;
    Alcotest.test_case "alu caps" `Quick test_alu_caps;
    Alcotest.test_case "with_*" `Quick test_with_updates;
    Alcotest.test_case "validation" `Quick test_validation_rejects;
  ]
