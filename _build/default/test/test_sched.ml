(* Unit + property tests for phase 2 (level scheduling). *)

module Cluster = Mapping.Cluster
module Sched = Mapping.Sched

let test_fig4_before () =
  (* Unbounded ALUs: levels must match paper Fig. 4(a). *)
  let clustering = Fpfa_kernels.Paper_examples.fig4_clustering () in
  let sched = Sched.run ~alu_count:100 clustering in
  let levels =
    Array.to_list sched.Sched.levels |> List.map (List.sort compare)
  in
  Alcotest.(check (list (list int)))
    "Fig 4(a)"
    (List.map (List.sort compare) Fpfa_kernels.Paper_examples.fig4_before)
    levels

let test_fig4_after () =
  (* 5 ALUs: Clu6 is displaced and a new level is inserted — Fig. 4(b). *)
  let clustering = Fpfa_kernels.Paper_examples.fig4_clustering () in
  let sched = Sched.run ~alu_count:5 clustering in
  let levels =
    Array.to_list sched.Sched.levels |> List.map (List.sort compare)
  in
  Alcotest.(check (list (list int)))
    "Fig 4(b)"
    (List.map (List.sort compare) Fpfa_kernels.Paper_examples.fig4_after)
    levels;
  Alcotest.(check int) "one level inserted" 5 (Sched.level_count sched);
  Alcotest.(check int) "critical path was 4" 4 (Sched.critical_path_levels sched)

let test_capacity_never_exceeded () =
  let clustering = Fpfa_kernels.Paper_examples.fig4_clustering () in
  List.iter
    (fun alu_count ->
      let sched = Sched.run ~alu_count clustering in
      Sched.validate sched ~alu_count)
    [ 1; 2; 3; 5; 11 ]

let test_one_alu_serialises () =
  let clustering = Fpfa_kernels.Paper_examples.fig4_clustering () in
  let sched = Sched.run ~alu_count:1 clustering in
  Alcotest.(check int) "eleven levels" 11 (Sched.level_count sched)

let test_mobility () =
  let clustering = Fpfa_kernels.Paper_examples.fig4_clustering () in
  let sched = Sched.run ~alu_count:5 clustering in
  (* Clu10 ends the critical path: zero mobility. *)
  Alcotest.(check int) "sink mobility" 0 (Sched.mobility sched 10);
  (* every mobility is non-negative *)
  Array.iteri
    (fun cid _ ->
      Alcotest.(check bool) "non-negative" true (Sched.mobility sched cid >= 0))
    clustering.Cluster.clusters

let test_critical_first () =
  (* With capacity 5 and 6 ready clusters of which one has mobility, the
     mobile one (Clu6 has the highest cid among critical ties... ) is
     deferred: exactly the Fig. 4 behaviour checked structurally. *)
  let clustering = Fpfa_kernels.Paper_examples.fig4_clustering () in
  let sched = Sched.run ~alu_count:5 clustering in
  Alcotest.(check int) "Clu6 deferred to level 1" 1 sched.Sched.level_of.(6)

let test_empty_graph () =
  let g = Cdfg.Graph.create "empty" in
  Cdfg.Graph.declare_region g "r" { Cdfg.Graph.size = Some 1; implicit = true };
  let ss = Cdfg.Graph.add g (Cdfg.Graph.Ss_in "r") [] in
  ignore (Cdfg.Graph.add g (Cdfg.Graph.Ss_out "r") [ ss ]);
  let clustering = Cluster.run g in
  let sched = Sched.run clustering in
  Alcotest.(check int) "no levels" 0 (Sched.level_count sched)

let test_kernel_schedules_valid () =
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let g = Cdfg.Builder.build_program k.Fpfa_kernels.Kernels.source in
      ignore (Transform.Simplify.minimize g);
      let clustering = Cluster.run g in
      let sched = Sched.run ~alu_count:5 clustering in
      Sched.validate sched ~alu_count:5;
      (* list scheduling can never beat the critical path *)
      Alcotest.(check bool)
        (k.Fpfa_kernels.Kernels.name ^ " >= critical path")
        true
        (Sched.level_count sched >= Sched.critical_path_levels sched))
    Fpfa_kernels.Kernels.all

(* Properties on random graphs. *)
let schedule_is_valid =
  QCheck.Test.make ~name:"schedule valid on random graphs" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range 0 5_000) (int_range 1 6)))
    (fun (seed, alu_count) ->
      let g = Fpfa_kernels.Random_graph.generate ~seed ~ops:50 () in
      let clustering = Cluster.run g in
      let sched = Sched.run ~alu_count clustering in
      Sched.validate sched ~alu_count;
      true)

let more_alus_never_hurt =
  QCheck.Test.make ~name:"more ALUs never lengthen the schedule" ~count:60
    (QCheck.make QCheck.Gen.(int_range 0 5_000))
    (fun seed ->
      let g = Fpfa_kernels.Random_graph.generate ~seed ~ops:50 () in
      let clustering = Cluster.run g in
      let levels n = Sched.level_count (Sched.run ~alu_count:n clustering) in
      levels 1 >= levels 2 && levels 2 >= levels 5 && levels 5 >= levels 10)

let suite =
  [
    Alcotest.test_case "Fig 4(a) before" `Quick test_fig4_before;
    Alcotest.test_case "Fig 4(b) after" `Quick test_fig4_after;
    Alcotest.test_case "capacity" `Quick test_capacity_never_exceeded;
    Alcotest.test_case "one ALU" `Quick test_one_alu_serialises;
    Alcotest.test_case "mobility" `Quick test_mobility;
    Alcotest.test_case "critical first" `Quick test_critical_first;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "kernel schedules" `Quick test_kernel_schedules_valid;
    QCheck_alcotest.to_alcotest schedule_is_valid;
    QCheck_alcotest.to_alcotest more_alus_never_hurt;
  ]
