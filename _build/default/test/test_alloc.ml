(* Unit tests for phase 3 (resource allocation). *)

module G = Cdfg.Graph
module Arch = Fpfa_arch.Arch
module Cluster = Mapping.Cluster
module Sched = Mapping.Sched
module Alloc = Mapping.Alloc
module Job = Mapping.Job

let job_of ?options ?(tile = Arch.paper_tile) source =
  let g = Cdfg.Builder.build_program source in
  ignore (Transform.Simplify.minimize g);
  let clustering = Cluster.run ~caps:tile.Arch.alu g in
  let sched = Sched.run ~alu_count:tile.Arch.alu_count clustering in
  Alloc.run ?options ~tile sched

let fir_source = Fpfa_kernels.Kernels.fir_paper.Fpfa_kernels.Kernels.source

let test_job_structure () =
  let job = job_of fir_source in
  Alcotest.(check bool) "has cycles" true (Job.cycle_count job > 0);
  (* every region has at least one home slice and a size *)
  List.iter
    (fun (region, _) ->
      Alcotest.(check bool) (region ^ " homed") true
        (Job.home_of job region <> []);
      Alcotest.(check bool) (region ^ " sized") true (Job.size_of job region > 0))
    job.Job.region_homes

let test_levels_map_to_increasing_cycles () =
  let job = job_of fir_source in
  let cycles = Array.to_list job.Job.exec_cycle_of_level in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "strictly increasing" true (increasing cycles)

let test_moves_precede_exec () =
  let job = job_of fir_source in
  (* every move's register is consumed by a later (or equal) exec cycle of
     its cluster; structurally: the move cycle is before that cluster's
     exec cycle *)
  let exec_of_cluster = Hashtbl.create 16 in
  Array.iteri
    (fun cycle (c : Job.cycle) ->
      List.iter
        (fun (w : Job.alu_work) ->
          Hashtbl.replace exec_of_cluster w.Job.wcluster cycle)
        c.Job.alu)
    job.Job.cycles;
  Array.iteri
    (fun cycle (c : Job.cycle) ->
      List.iter
        (fun (m : Job.move) ->
          match Hashtbl.find_opt exec_of_cluster m.Job.for_cluster with
          | Some exec ->
            Alcotest.(check bool) "move before exec" true (cycle < exec);
            Alcotest.(check bool) "within widened window" true
              (exec - cycle <= job.Job.tile.Arch.move_window + 64)
          | None -> Alcotest.fail "move for unknown cluster")
        c.Job.moves)
    job.Job.cycles

let test_bus_limit_respected () =
  let tile = Arch.with_buses 2 Arch.paper_tile in
  let job = job_of ~tile fir_source in
  (* the simulator recounts transfers and faults on overflow *)
  let _, trace = Fpfa_sim.Sim.run job in
  Alcotest.(check bool) "max bus <= 2" true (trace.Fpfa_sim.Sim.max_bus_per_cycle <= 2)

let test_one_read_port_per_memory () =
  let job = job_of fir_source in
  Array.iter
    (fun (c : Job.cycle) ->
      let reads =
        List.map
          (fun (m : Job.move) -> (m.Job.src.Job.mpp, m.Job.src.Job.mem))
          c.Job.moves
      in
      Alcotest.(check int) "distinct memories" (List.length reads)
        (List.length (Fpfa_util.Listx.uniq compare reads)))
    job.Job.cycles

let test_register_banks_not_overfilled () =
  let job = job_of Fpfa_kernels.Kernels.(matmul ~n:3).Fpfa_kernels.Kernels.source in
  let tile = job.Job.tile in
  (* track register occupancy cycle by cycle *)
  let live : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let exec_of_cluster = Hashtbl.create 64 in
  Array.iteri
    (fun cycle (c : Job.cycle) ->
      List.iter
        (fun (w : Job.alu_work) ->
          Hashtbl.replace exec_of_cluster w.Job.wcluster cycle)
        c.Job.alu)
    job.Job.cycles;
  Array.iteri
    (fun cycle (c : Job.cycle) ->
      List.iter
        (fun (m : Job.move) ->
          let r = m.Job.dst in
          let until =
            match Hashtbl.find_opt exec_of_cluster m.Job.for_cluster with
            | Some e -> e
            | None -> cycle
          in
          for t = cycle to until do
            let key = (t, r.Job.pp, r.Job.bank) in
            let n = (match Hashtbl.find_opt live key with Some n -> n | None -> 0) + 1 in
            Hashtbl.replace live key n;
            Alcotest.(check bool) "bank within capacity" true
              (n <= tile.Arch.regs_per_bank)
          done)
        c.Job.moves)
    job.Job.cycles

let test_locality_option () =
  let local = job_of ~options:{ Alloc.locality = true; forwarding = false; interleave = false } fir_source in
  let scattered =
    job_of ~options:{ Alloc.locality = false; forwarding = false; interleave = false } fir_source
  in
  let m1 = Mapping.Metrics.of_job local in
  let m2 = Mapping.Metrics.of_job scattered in
  Alcotest.(check bool) "locality ratio at least as good" true
    (m1.Mapping.Metrics.locality >= m2.Mapping.Metrics.locality)

let test_forwarding_reduces_moves () =
  let source = Fpfa_kernels.Kernels.(polynomial ~degree:6).Fpfa_kernels.Kernels.source in
  let plain = Mapping.Metrics.of_job (job_of source) in
  let fwd =
    Mapping.Metrics.of_job
      (job_of ~options:{ Alloc.locality = true; forwarding = true; interleave = false } source)
  in
  Alcotest.(check bool) "fewer memory moves" true
    (fwd.Mapping.Metrics.moves < plain.Mapping.Metrics.moves);
  Alcotest.(check bool) "forwards happened" true (fwd.Mapping.Metrics.forwards > 0);
  Alcotest.(check bool) "not slower" true
    (fwd.Mapping.Metrics.cycles <= plain.Mapping.Metrics.cycles)

let test_memory_capacity_error () =
  let tile = { Arch.paper_tile with Arch.memory_size = 4 } in
  (* 10 regions of 8 words cannot fit 10 memories of 4 words *)
  let source =
    "void main() { b0[7]=a[0]; b1[7]=a[1]; b2[7]=a[2]; b3[7]=a[3]; b4[7]=a[4]; }"
  in
  match job_of ~tile source with
  | exception Alloc.Allocation_error _ -> ()
  | _ -> Alcotest.fail "expected memory capacity error"

let test_window_parameter () =
  (* a 1-cycle window still allocates (with inserted cycles) *)
  let tile = Arch.with_move_window 1 Arch.paper_tile in
  let job = job_of ~tile fir_source in
  Alcotest.(check bool) "still conformant" true (Fpfa_sim.Sim.conforms job)

let test_single_pp_tile () =
  let tile = Arch.with_alu_count 1 Arch.paper_tile in
  let job = job_of ~tile fir_source in
  Array.iter
    (fun (c : Job.cycle) ->
      Alcotest.(check bool) "at most one ALU bundle" true
        (List.length c.Job.alu <= 1))
    job.Job.cycles

let test_scratch_slots_distinct_from_regions () =
  let job = job_of fir_source in
  (* No two regions' concrete cells may overlap. *)
  let cells_of region =
    List.init (Job.size_of job region) (fun offset ->
        let loc = Job.cell_of job region offset in
        (loc.Job.mpp, loc.Job.mem, loc.Job.addr))
  in
  let regions = List.map fst job.Job.region_homes in
  List.iteri
    (fun i r1 ->
      List.iteri
        (fun j r2 ->
          if i < j then
            let shared =
              List.filter (fun c -> List.mem c (cells_of r2)) (cells_of r1)
            in
            Alcotest.(check (list (triple int int int)))
              (r1 ^ " vs " ^ r2 ^ " disjoint")
              [] shared)
        regions)
    regions

let test_interleaved_cells () =
  let slices =
    [ { Job.mpp = 0; mem = 0; addr = 10 }; { Job.mpp = 0; mem = 1; addr = 4 } ]
  in
  let cell i = Job.interleaved_cell slices i in
  Alcotest.(check int) "cell 0 mem" 0 (cell 0).Job.mem;
  Alcotest.(check int) "cell 0 addr" 10 (cell 0).Job.addr;
  Alcotest.(check int) "cell 1 mem" 1 (cell 1).Job.mem;
  Alcotest.(check int) "cell 1 addr" 4 (cell 1).Job.addr;
  Alcotest.(check int) "cell 5 mem" 1 (cell 5).Job.mem;
  Alcotest.(check int) "cell 5 addr" 6 (cell 5).Job.addr;
  Alcotest.(check int) "cell 6 mem" 0 (cell 6).Job.mem;
  Alcotest.(check int) "cell 6 addr" 13 (cell 6).Job.addr

let interleave_options =
  { Alloc.locality = true; forwarding = false; interleave = true }

let test_interleaving_splits_arrays () =
  let job =
    job_of ~options:interleave_options
      Fpfa_kernels.Kernels.(vector_scale ~n:8).Fpfa_kernels.Kernels.source
  in
  let slices = Job.home_of job "x" in
  Alcotest.(check int) "two slices" 2 (List.length slices);
  (* the two slices must sit on different memories so reads parallelise *)
  (match slices with
  | [ a; b ] ->
    Alcotest.(check bool) "different memories" true
      ((a.Job.mpp, a.Job.mem) <> (b.Job.mpp, b.Job.mem))
  | _ -> Alcotest.fail "expected two slices");
  (* scalars stay contiguous *)
  Alcotest.(check int) "scalar one slice" 1 (List.length (Job.home_of job "i"))

let test_interleaving_conforms () =
  List.iter
    (fun (k : Fpfa_kernels.Kernels.t) ->
      let job =
        job_of ~options:interleave_options k.Fpfa_kernels.Kernels.source
      in
      Alcotest.(check bool)
        (k.Fpfa_kernels.Kernels.name ^ " interleaved conforms")
        true
        (Fpfa_sim.Sim.conforms ~memory_init:k.Fpfa_kernels.Kernels.inputs job))
    Fpfa_kernels.Kernels.all

let test_interleaved_config_roundtrip () =
  let k = Fpfa_kernels.Kernels.dct4 in
  let job = job_of ~options:interleave_options k.Fpfa_kernels.Kernels.source in
  let job' = Mapping.Encode.of_string (Mapping.Encode.to_string job) in
  Alcotest.(check bool) "roundtrip conforms" true
    (Fpfa_sim.Sim.conforms ~memory_init:k.Fpfa_kernels.Kernels.inputs job')

let suite =
  [
    Alcotest.test_case "job structure" `Quick test_job_structure;
    Alcotest.test_case "levels increase" `Quick test_levels_map_to_increasing_cycles;
    Alcotest.test_case "moves precede exec" `Quick test_moves_precede_exec;
    Alcotest.test_case "bus limit" `Quick test_bus_limit_respected;
    Alcotest.test_case "read ports" `Quick test_one_read_port_per_memory;
    Alcotest.test_case "register banks" `Quick test_register_banks_not_overfilled;
    Alcotest.test_case "locality option" `Quick test_locality_option;
    Alcotest.test_case "forwarding option" `Quick test_forwarding_reduces_moves;
    Alcotest.test_case "memory capacity" `Quick test_memory_capacity_error;
    Alcotest.test_case "window=1" `Quick test_window_parameter;
    Alcotest.test_case "single PP" `Quick test_single_pp_tile;
    Alcotest.test_case "regions disjoint" `Quick test_scratch_slots_distinct_from_regions;
  ]
  @ [
      Alcotest.test_case "interleaved cells" `Quick test_interleaved_cells;
      Alcotest.test_case "interleaving splits" `Quick test_interleaving_splits_arrays;
      Alcotest.test_case "interleaving conforms" `Quick test_interleaving_conforms;
      Alcotest.test_case "interleaved roundtrip" `Quick test_interleaved_config_roundtrip;
    ]
