lib/arch/arch.ml: Format Printf
