(** Seeded random CDFG generator for scalability experiments.

    Produces legal, already-minimised-looking DAGs: a layer of input
    fetches, [ops] random arithmetic operations with bounded fan-in drawn
    from earlier nodes, and stores of the sink values to an output region.
    Offsets are constant, so the graphs map without further
    transformation. Used by experiment E5 (linear-complexity check of the
    scheduling and allocation phases) and by property-based tests. *)

val generate :
  ?seed:int ->
  ?input_words:int ->
  ?mul_ratio:float ->
  ops:int ->
  unit ->
  Cdfg.Graph.t
(** [generate ~ops ()] builds a graph with [ops] value operations.
    [input_words] (default [max 4 (ops/4)]) sizes the input region;
    [mul_ratio] (default 0.3) is the fraction of multiplier-class
    operations. The result passes [Graph.validate] and [Legalize.check]. *)

val random_inputs : ?seed:int -> Cdfg.Graph.t -> (string * int array) list
(** Deterministic input contents for every implicit region of a graph. *)
