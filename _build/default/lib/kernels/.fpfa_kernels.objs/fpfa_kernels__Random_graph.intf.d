lib/kernels/random_graph.mli: Cdfg
