lib/kernels/random_graph.ml: Array Cdfg Fpfa_util Hashtbl List Printf
