lib/kernels/kernels.mli: Cfront
