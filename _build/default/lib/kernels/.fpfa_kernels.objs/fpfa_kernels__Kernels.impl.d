lib/kernels/kernels.ml: Array Cfront Fpfa_util List Printf String
