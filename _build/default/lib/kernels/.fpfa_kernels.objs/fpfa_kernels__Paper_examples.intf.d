lib/kernels/paper_examples.mli: Mapping
