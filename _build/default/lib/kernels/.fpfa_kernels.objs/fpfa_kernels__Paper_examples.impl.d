lib/kernels/paper_examples.ml: Array Cdfg Hashtbl List Mapping Printf
