(** Verbatim artefacts from the paper, encoded for the experiments.

    Fig. 4 shows eleven clusters (Clu0–Clu10) scheduled onto 5 ALUs: before
    scheduling the unbounded levels are [1 2 3 4 5 6 / 0 7 / 8 9 / 10]; with
    only five ALUs, Clu6 is displaced and a new level is inserted, giving
    five levels. {!fig4_clustering} encodes exactly that dependence
    structure (every cluster a trivial pass-through, dependencies as drawn),
    so the scheduler can be run on the paper's own example. *)

val fig4_clustering : unit -> Mapping.Cluster.t
(** The 11-cluster graph of paper Fig. 4(a). *)

val fig4_before : int list list
(** Levels before scheduling (unbounded ALUs), as in Fig. 4(a):
    [[1;2;3;4;5;6]; [0;7]; [8;9]; [10]]. *)

val fig4_after : int list list
(** Levels after scheduling on 5 ALUs, as in Fig. 4(b): Clu6 moves down
    and a new level appears. *)
