module G = Cdfg.Graph

(* Dependencies drawn in Fig. 4: Clu0 collects Clu1, Clu2, Clu6; Clu7
   collects Clu3, Clu4, Clu5; Clu8 reads Clu0; Clu9 reads Clu7; Clu10 joins
   Clu8 and Clu9. *)
let fig4_edges =
  [
    (1, 0); (2, 0); (6, 0);
    (3, 7); (4, 7); (5, 7);
    (0, 8);
    (7, 9);
    (8, 10); (9, 10);
  ]

let fig4_clustering () =
  let g = G.create "fig4" in
  let cluster_of = Hashtbl.create 16 in
  let clusters =
    Array.init 11 (fun cid ->
        (* Each paper cluster becomes a pass-through of a distinct constant
           stored to its own single-cell region — enough structure for the
           scheduler and the allocator. *)
        let region = Printf.sprintf "out%d" cid in
        G.declare_region g region { G.size = Some 1; implicit = false };
        let ss = G.add g (G.Ss_in region) [] in
        let value = G.add g (G.Const (100 + cid)) [] in
        let offset = G.add g (G.Const 0) [] in
        let stn = G.add g (G.St region) [ ss; offset; value ] in
        ignore (G.add g (G.Ss_out region) [ stn ]);
        Hashtbl.replace cluster_of stn cid;
        {
          Mapping.Cluster.cid;
          ops = [];
          root = Some value;
          stores = [ stn ];
          deletes = [];
          cinputs = [ value ];
        })
  in
  let edges =
    List.map
      (fun (src, dst) -> { Mapping.Cluster.src; dst; weight = 1 })
      fig4_edges
  in
  { Mapping.Cluster.graph = g; clusters; edges; cluster_of }

let fig4_before = [ [ 1; 2; 3; 4; 5; 6 ]; [ 0; 7 ]; [ 8; 9 ]; [ 10 ] ]

let fig4_after = [ [ 1; 2; 3; 4; 5 ]; [ 6; 7 ]; [ 0; 9 ]; [ 8 ]; [ 10 ] ]
