module G = Cdfg.Graph
module Op = Cdfg.Op

let value_binops =
  [ Op.Add; Op.Sub; Op.Band; Op.Bor; Op.Bxor; Op.Lt; Op.Ne; Op.Shr ]

let mul_binops = [ Op.Mul ]

(* Regions are split into 256-word banks so that even large generated
   graphs fit the tile's 512-word memories alongside scratch space. *)
let bank_words = 256

let generate ?(seed = 42) ?input_words ?(mul_ratio = 0.3) ~ops () =
  assert (ops > 0);
  let rng = Fpfa_util.Prng.create seed in
  let input_words =
    match input_words with Some w -> w | None -> max 4 (ops / 4)
  in
  let g = G.create (Printf.sprintf "random-%d-%d" ops seed) in
  let consts = Hashtbl.create 8 in
  let const v =
    match Hashtbl.find_opt consts v with
    | Some id -> id
    | None ->
      let id = G.add g (G.Const v) [] in
      Hashtbl.replace consts v id;
      id
  in
  (* Input fetches, split into banks of [bank_words]. *)
  let input_banks = (input_words + bank_words - 1) / bank_words in
  let input_tokens =
    List.init input_banks (fun bank ->
        let region = Printf.sprintf "input%d" bank in
        let words = min bank_words (input_words - (bank * bank_words)) in
        G.declare_region g region { G.size = Some words; implicit = true };
        let ss = G.add g (G.Ss_in region) [] in
        (region, ss))
  in
  let fetches =
    List.init input_words (fun i ->
        let region, ss = List.nth input_tokens (i / bank_words) in
        G.add g (G.Fe region) [ ss; const (i mod bank_words) ])
  in
  (* Random operation layer: operands drawn from fetches and earlier ops,
     biased towards recent values so that chains form. *)
  let values = ref (Array.of_list fetches) in
  let pick_value () =
    let arr = !values in
    let n = Array.length arr in
    (* Bias: half the draws come from the most recent quarter. *)
    let idx =
      if Fpfa_util.Prng.bool rng && n > 4 then
        n - 1 - Fpfa_util.Prng.int rng (max 1 (n / 4))
      else Fpfa_util.Prng.int rng n
    in
    arr.(idx)
  in
  let op_ids =
    List.init ops (fun _ ->
        let id =
          if Fpfa_util.Prng.float rng < mul_ratio then
            G.add g
              (G.Binop (Fpfa_util.Prng.pick rng mul_binops))
              [ pick_value (); pick_value () ]
          else if Fpfa_util.Prng.float rng < 0.1 then
            G.add g (G.Unop Op.Neg) [ pick_value () ]
          else
            G.add g
              (G.Binop (Fpfa_util.Prng.pick rng value_binops))
              [ pick_value (); pick_value () ]
        in
        values := Array.append !values [| id |];
        id)
  in
  (* Store every sink (op with no consumers) to banked output regions. *)
  let consumers = G.consumers g in
  let sinks =
    List.filter (fun id -> not (Hashtbl.mem consumers id)) op_ids
  in
  let output_banks =
    max 1 ((List.length sinks + bank_words - 1) / bank_words)
  in
  let output_tokens =
    Array.init output_banks (fun bank ->
        let region = Printf.sprintf "output%d" bank in
        let words =
          max 1 (min bank_words (List.length sinks - (bank * bank_words)))
        in
        G.declare_region g region { G.size = Some words; implicit = false };
        (region, ref (G.add g (G.Ss_in region) [])))
  in
  List.iteri
    (fun i sink ->
      let region, token = output_tokens.(i / bank_words) in
      token := G.add g (G.St region) [ !token; const (i mod bank_words); sink ])
    sinks;
  Array.iter
    (fun (region, token) ->
      ignore (G.add g (G.Ss_out region) [ !token ]))
    output_tokens;
  List.iter
    (fun (region, ss) -> ignore (G.add g (G.Ss_out region) [ ss ]))
    input_tokens;
  G.validate g;
  g

let random_inputs ?(seed = 7) g =
  let rng = Fpfa_util.Prng.create seed in
  List.filter_map
    (fun (region, (info : G.region_info)) ->
      if info.G.implicit then
        let words = match info.G.size with Some s -> s | None -> 8 in
        Some
          (region, Array.init words (fun _ -> Fpfa_util.Prng.int_in rng (-50) 50))
      else None)
    (G.regions g)
