(** Cycle-accurate behavioural simulator of one FPFA tile.

    Executes a {!Mapping.Job.t} cycle by cycle: register moves read memory
    at the start of a cycle, ALUs evaluate their configured data paths from
    the input register banks, and write-backs/deletes commit to memory at
    the end of their cycle. Every hardware constraint (crossbar lanes,
    memory ports, register-bank capacity, one ALU per PP) is re-checked
    dynamically — the simulator is an independent referee for the
    allocator.

    The final region contents must equal the CDFG evaluator's result on the
    same inputs; {!conforms} checks exactly that. *)

type trace = {
  cycles_run : int;
  max_bus_per_cycle : int;
  moves_executed : int;
  writes_executed : int;
}

exception Fault of string
(** Constraint violation or semantic error (read of a deleted word, two
    writes racing on one cell in one cycle, port or lane overflow...). *)

val run :
  ?memory_init:(string * int array) list ->
  ?trace_out:Format.formatter ->
  Mapping.Job.t ->
  (string * int array) list * trace
(** Executes the job. Returns the final contents of every region (sorted by
    name, sized per the job's static region sizes) and an execution trace.
    [memory_init] seeds region contents exactly as in {!Cdfg.Eval.run}.
    [trace_out] prints one line per event (move, copy, ALU result,
    write-back, delete) with concrete values — the tile's logic-analyser
    view. *)

val conforms :
  ?memory_init:(string * int array) list -> Mapping.Job.t -> bool
(** Runs both the simulator and the CDFG evaluator on the same inputs and
    compares region contents (zero-padded to the static size). *)
