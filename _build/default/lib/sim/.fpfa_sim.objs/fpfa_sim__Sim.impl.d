lib/sim/sim.ml: Array Cdfg Format Fpfa_arch Fpfa_util Hashtbl List Mapping
