lib/sim/sim.mli: Format Mapping
