lib/core/loop_flow.ml: Array Cfront Flow Format Fpfa_sim Hashtbl List Mapping Option Printf String
