lib/core/loop_flow.mli: Flow Format Mapping
