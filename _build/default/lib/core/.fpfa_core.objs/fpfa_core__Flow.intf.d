lib/core/flow.mli: Cdfg Cfront Format Fpfa_arch Mapping Transform
