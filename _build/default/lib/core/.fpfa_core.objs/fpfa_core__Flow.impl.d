lib/core/flow.ml: Array Cdfg Cfront Format Fpfa_arch Fpfa_sim List Mapping Printf String Transform
