lib/core/pipeline.ml: Array Cfront Flow Format Fpfa_sim Fpfa_util List Loop_flow Mapping Printf String
