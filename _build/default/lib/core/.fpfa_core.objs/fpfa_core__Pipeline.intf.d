lib/core/pipeline.mli: Flow Format Loop_flow
