lib/transform/pass.ml: Cdfg List Printf
