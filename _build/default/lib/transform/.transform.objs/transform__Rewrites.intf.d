lib/transform/rewrites.mli: Pass
