lib/transform/pass.mli: Cdfg
