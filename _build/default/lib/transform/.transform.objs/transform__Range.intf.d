lib/transform/range.mli: Cdfg Format
