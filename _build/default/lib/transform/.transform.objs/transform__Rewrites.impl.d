lib/transform/rewrites.ml: Array Cdfg List Pass
