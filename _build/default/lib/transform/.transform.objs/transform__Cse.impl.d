lib/transform/cse.ml: Array Cdfg Hashtbl List Pass
