lib/transform/cse.mli: Pass
