lib/transform/hoist.ml: Array Cdfg Hashtbl List Pass
