lib/transform/range.ml: Array Cdfg Float Format Hashtbl List Printf
