lib/transform/reassoc.mli: Pass
