lib/transform/forward.ml: Array Cdfg Hashtbl List Pass String
