lib/transform/forward.mli: Pass
