lib/transform/hoist.mli: Pass
