lib/transform/simplify.mli: Cdfg Format Pass
