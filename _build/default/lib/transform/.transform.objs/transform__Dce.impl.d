lib/transform/dce.ml: Cdfg Hashtbl List Pass
