lib/transform/reassoc.ml: Cdfg Fpfa_util Hashtbl List Pass
