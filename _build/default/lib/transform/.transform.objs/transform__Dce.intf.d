lib/transform/dce.mli: Pass
