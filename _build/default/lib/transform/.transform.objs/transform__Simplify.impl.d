lib/transform/simplify.ml: Cdfg Cse Dce Format Forward Hoist List Pass Reassoc Rewrites
