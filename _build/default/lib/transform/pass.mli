(** Behaviour-preserving graph transformation framework (paper Section I:
    "minimized using a set of behaviour preserving transformations"). *)

type t = {
  name : string;
  run : Cdfg.Graph.t -> bool;
      (** Mutates the graph; returns true when anything changed. *)
}

val run_fixpoint : ?max_rounds:int -> t list -> Cdfg.Graph.t -> int
(** Runs the pass list repeatedly until one full round changes nothing.
    Returns the number of rounds executed. [max_rounds] (default 100)
    guards against non-terminating rewrite interactions.
    @raise Failure when the bound is hit. *)

val checked : t -> t
(** Wraps a pass so that the graph is validated after it runs (used by the
    test suite to catch invariant-breaking rewrites early). *)
