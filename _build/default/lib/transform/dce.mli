(** Dead node elimination.

    Removes nodes with no data uses and no named-output references.
    [Ss_out] nodes are roots (region contents are observable). A node that
    is only referenced by order-only edges is still dead: those edges
    protect a read whose value nobody consumes, so they are dropped with
    the node. *)

val pass : Pass.t
