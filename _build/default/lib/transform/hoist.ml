module G = Cdfg.Graph
module Op = Cdfg.Op

let single_use consumers id =
  match Hashtbl.find_opt consumers id with
  | Some [ _ ] -> true
  | Some _ | None -> false

let run g =
  let changed = ref false in
  let consumers = G.consumers g in
  let visit (n : G.node) =
    match n.G.kind with
    | G.Mux -> (
      let c = n.G.inputs.(0)
      and if_true = n.G.inputs.(1)
      and if_false = n.G.inputs.(2) in
      (* same condition dominating a nested mux *)
      let collapse_nested () =
        match (G.kind g if_true, G.kind g if_false) with
        | G.Mux, _ when List.nth (G.inputs g if_true) 0 = c ->
          (* outer true-arm re-tests c: keep its true arm *)
          G.set_inputs g n.G.id [ c; List.nth (G.inputs g if_true) 1; if_false ];
          changed := true;
          true
        | _, G.Mux when List.nth (G.inputs g if_false) 0 = c ->
          G.set_inputs g n.G.id [ c; if_true; List.nth (G.inputs g if_false) 2 ];
          changed := true;
          true
        | _, _ -> false
      in
      if collapse_nested () then ()
      else if if_true = if_false then begin
        G.replace_uses g n.G.id ~by:if_true;
        changed := true
      end
      else
        (* mux (c, op(a, x), op(b, x)) -> op (mux (c, a, b), x) *)
        match (G.kind g if_true, G.kind g if_false) with
        | G.Binop op1, G.Binop op2
          when op1 = op2 && single_use consumers if_true
               && single_use consumers if_false -> (
          let t = G.inputs g if_true and f = G.inputs g if_false in
          match (t, f) with
          | [ t0; t1 ], [ f0; f1 ] ->
            (* shared operand s stays in place; the differing operands a
               (true arm) and b (false arm) move inside the new mux *)
            let shared_left s a b =
              let inner = G.add g G.Mux [ c; a; b ] in
              let hoisted = G.add g (G.Binop op1) [ s; inner ] in
              G.replace_uses g n.G.id ~by:hoisted;
              changed := true
            in
            let shared_right s a b =
              let inner = G.add g G.Mux [ c; a; b ] in
              let hoisted = G.add g (G.Binop op1) [ inner; s ] in
              G.replace_uses g n.G.id ~by:hoisted;
              changed := true
            in
            if t1 = f1 then shared_right t1 t0 f0
            else if t0 = f0 then shared_left t0 t1 f1
            else if Op.commutative op1 && t0 = f1 then
              (* op (s, t1) vs op (f0, s) *)
              shared_left t0 t1 f0
            else if Op.commutative op1 && t1 = f0 then
              (* op (t0, s) vs op (s, f1) *)
              shared_right t1 t0 f1
          | _, _ -> ())
        | G.Unop op1, G.Unop op2
          when op1 = op2 && single_use consumers if_true
               && single_use consumers if_false ->
          let t0 = List.nth (G.inputs g if_true) 0
          and f0 = List.nth (G.inputs g if_false) 0 in
          let inner = G.add g G.Mux [ c; t0; f0 ] in
          let hoisted = G.add g (G.Unop op1) [ inner ] in
          G.replace_uses g n.G.id ~by:hoisted;
          changed := true
        | _, _ -> ())
    | G.Const _ | G.Binop _ | G.Unop _ | G.Ss_in _ | G.Ss_out _ | G.Fe _
    | G.St _ | G.Del _ ->
      ()
  in
  List.iter (fun id -> if G.mem g id then visit (G.node g id)) (G.node_ids g);
  !changed

let pass = { Pass.name = "mux-hoist"; run }
