(** Hoisting common operations out of MUX branches.

    If-conversion computes both sides of a branch and selects; when the two
    sides share structure, the selection can move inward:

    - [mux (c, f(a, x), f(b, x))  ->  f (mux (c, a, b), x)] (one [f] fewer,
      for any binop/unop position);
    - [mux (c, a, a)] collapses (also done by {!Rewrites.algebraic});
    - [mux (c, x, mux (c, y, z)) -> mux (c, x, z)] and the symmetric form
      (same condition dominates).

    Fires only when the absorbed operations have no other consumers, so it
    never duplicates work. An extension pass in the spirit of the paper's
    "more transformations will be added"; part of
    {!Simplify.extended_passes} and benched against the if-conversion cost
    of E10. *)

val pass : Pass.t
