(** The "full simplification" pipeline (paper Fig. 3's caption: "after
    complete loop unrolling and full simplification"). *)

val default_passes : Pass.t list
(** Constant folding, algebraic simplification, CSE, store-to-fetch
    forwarding, dead-store elimination, dead-node elimination, associative
    rebalancing — run to a fixpoint in that order. *)

val extended_passes : Pass.t list
(** [default_passes] plus strength reduction and MUX hoisting (future-work
    extensions). *)

type report = {
  rounds : int;
  before : Cdfg.Graph.stats;
  after : Cdfg.Graph.stats;
}

val minimize : ?passes:Pass.t list -> ?validate:bool -> Cdfg.Graph.t -> report
(** Mutates the graph to its minimised form and reports the shrinkage.
    When [validate] is true (default), the graph invariants are checked
    after every pass. *)

val pp_report : Format.formatter -> report -> unit
