module G = Cdfg.Graph
module Op = Cdfg.Op

type interval = { lo : int; hi : int }

let pp_interval fmt { lo; hi } = Format.fprintf fmt "[%d, %d]" lo hi

(* Bounds saturate to the full OCaml int range: [min_int] and [max_int]
   act as minus/plus infinity, so the top interval contains every runtime
   value — including results of operations that wrap the 63-bit machine
   integer (e.g. huge shifts). All arithmetic on bounds detects overflow
   (via floats, exact enough at this magnitude) and saturates instead of
   wrapping, which keeps the analysis sound. *)
let neg_inf = min_int
let pos_inf = max_int
let finite_limit = 1 lsl 59

let is_inf v = v = neg_inf || v = pos_inf

let sat v = if v >= finite_limit then pos_inf else if v <= -finite_limit then neg_inf else v

let sat_add a b =
  if a = neg_inf || b = neg_inf then neg_inf
  else if a = pos_inf || b = pos_inf then pos_inf
  else sat (a + b)

let sat_neg a =
  if a = neg_inf then pos_inf else if a = pos_inf then neg_inf else -a

let sat_sub a b = sat_add a (sat_neg b)

let sat_mul a b =
  if a = 0 || b = 0 then 0
  else
    let sign = (a > 0) = (b > 0) in
    if is_inf a || is_inf b then if sign then pos_inf else neg_inf
    else if Float.abs (float_of_int a *. float_of_int b) >= float_of_int finite_limit
    then if sign then pos_inf else neg_inf
    else sat (a * b)

let make lo hi =
  assert (lo <= hi);
  { lo; hi }

let const v = make (sat v) (sat v)
let hull a b = make (min a.lo b.lo) (max a.hi b.hi)
let top = make neg_inf pos_inf
let bool_interval = make 0 1

let full_width width =
  assert (width > 1);
  make (-(1 lsl (width - 1))) ((1 lsl (width - 1)) - 1)

(* pos_inf when any bound is infinite *)
let magnitude a =
  if is_inf a.lo || is_inf a.hi then pos_inf else max (abs a.lo) (abs a.hi)

(* Smallest k such that the interval fits in a signed (k+1)-bit word; used
   for the conservative bitwise bound. *)
let bits_for a =
  let m = magnitude a in
  if m = pos_inf then 62
  else
    let rec loop k = if k >= 62 || 1 lsl k > m then k else loop (k + 1) in
    loop 1

let binop_interval op a b =
  match op with
  | Op.Add -> make (sat_add a.lo b.lo) (sat_add a.hi b.hi)
  | Op.Sub -> make (sat_sub a.lo b.hi) (sat_sub a.hi b.lo)
  | Op.Mul ->
    let products =
      [ sat_mul a.lo b.lo; sat_mul a.lo b.hi; sat_mul a.hi b.lo; sat_mul a.hi b.hi ]
    in
    make
      (List.fold_left min pos_inf products)
      (List.fold_left max neg_inf products)
  | Op.Div ->
    (* |a / b| <= |a| for any b (and a/0 = 0 in our total semantics) *)
    let m = magnitude a in
    make (sat_neg m) m
  | Op.Mod ->
    (* |a mod b| < |b| and |a mod b| <= |a|; a mod 0 = 0 *)
    let m =
      let ma = magnitude a
      and mb = if magnitude b = pos_inf then pos_inf else max 0 (magnitude b - 1) in
      min ma mb
    in
    let lo = if a.lo < 0 then sat_neg m else 0 in
    let hi = if a.hi > 0 then m else 0 in
    make lo hi
  | Op.Shl ->
    (* the machine shift wraps the 63-bit integer, so anything uncertain is
       the full top interval *)
    if b.lo = b.hi && b.lo >= 0 && b.lo <= 40 && not (is_inf a.lo || is_inf a.hi)
    then
      let f = 1 lsl b.lo in
      make (sat_mul a.lo f) (sat_mul a.hi f)
    else top
  | Op.Shr ->
    if
      b.lo = b.hi && b.lo >= 0 && b.lo <= 62
      && not (is_inf a.lo || is_inf a.hi)
    then make (a.lo asr b.lo) (a.hi asr b.lo)
    else
      (* arithmetic shift never grows magnitude; out-of-range yields 0 *)
      make (min a.lo 0) (max a.hi 0)
  | Op.Band | Op.Bor | Op.Bxor ->
    let k = max (bits_for a) (bits_for b) in
    if k >= 62 then top
    else if a.lo >= 0 && b.lo >= 0 then
      (* non-negative operands: results stay below the next power of two *)
      make 0 ((1 lsl k) - 1)
    else make (-(1 lsl k)) ((1 lsl k) - 1)
  | Op.Lt | Op.Le | Op.Gt | Op.Ge | Op.Eq | Op.Ne | Op.Land | Op.Lor ->
    bool_interval

let unop_interval op a =
  match op with
  | Op.Neg -> make (sat_neg a.hi) (sat_neg a.lo)
  | Op.Bnot -> make (sat_sub (sat_neg a.hi) 1) (sat_sub (sat_neg a.lo) 1)
  | Op.Lnot -> bool_interval

type violation = { node : G.id; kind : G.kind; range : interval }

type report = {
  ranges : (G.id * interval) list;
  violations : violation list;
  iterations : int;
}

let analyze ?(width = 16) ?(input_ranges = []) g =
  let input_range region =
    match List.assoc_opt region input_ranges with
    | Some r -> r
    | None -> full_width width
  in
  let value_range : (G.id, interval) Hashtbl.t = Hashtbl.create 64 in
  (* Per region: the join of its input interval and every stored value seen
     so far. Fetches read this; it only widens, so iteration converges. *)
  let region_range : (string, interval) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (region, _) -> Hashtbl.replace region_range region (input_range region))
    (G.regions g);
  let order = G.topo_order g in
  let changed = ref true in
  let iterations = ref 0 in
  let max_iterations = 8 in
  while !changed && !iterations < max_iterations do
    changed := false;
    incr iterations;
    List.iter
      (fun id ->
        let n = G.node g id in
        let value i = Hashtbl.find value_range n.G.inputs.(i) in
        let update range =
          match Hashtbl.find_opt value_range id with
          | Some old when old = range -> ()
          | Some old ->
            Hashtbl.replace value_range id (hull old range);
            changed := true
          | None ->
            Hashtbl.replace value_range id range;
            changed := true
        in
        match n.G.kind with
        | G.Const v -> update (const v)
        | G.Binop op -> update (binop_interval op (value 0) (value 1))
        | G.Unop op -> update (unop_interval op (value 0))
        | G.Mux -> update (hull (value 1) (value 2))
        | G.Fe region -> update (Hashtbl.find region_range region)
        | G.St region ->
          let stored = value 2 in
          let old = Hashtbl.find region_range region in
          let joined = hull old stored in
          if joined <> old then begin
            Hashtbl.replace region_range region joined;
            changed := true
          end
        | G.Ss_in _ | G.Ss_out _ | G.Del _ -> ())
      order
  done;
  (* If the fixpoint did not settle, widen everything that was still in
     motion to the unbounded interval (sound, maximally conservative). *)
  if !changed then begin
    List.iter
      (fun id ->
        if Hashtbl.mem value_range id then Hashtbl.replace value_range id top)
      order
  end;
  let limit = full_width width in
  let ranges =
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt value_range id with
        | Some r -> Some (id, r)
        | None -> None)
      (G.node_ids g)
  in
  let violations =
    List.filter_map
      (fun (id, r) ->
        if r.lo < limit.lo || r.hi > limit.hi then
          Some { node = id; kind = G.kind g id; range = r }
        else None)
      ranges
  in
  { ranges; violations; iterations = !iterations }

let range_of report id = List.assoc_opt id report.ranges

let fits ?width ?input_ranges g =
  (analyze ?width ?input_ranges g).violations = []

let pp_report g fmt report =
  Format.fprintf fmt "@[<v>%d value nodes analysed in %d iteration(s)@,"
    (List.length report.ranges) report.iterations;
  if report.violations = [] then
    Format.fprintf fmt "all values fit the datapath@]"
  else begin
    Format.fprintf fmt "%d value(s) may exceed the datapath:@,"
      (List.length report.violations);
    List.iter
      (fun v ->
        let kind_text =
          match v.kind with
          | G.Binop op -> Cdfg.Op.binop_to_string op
          | G.Unop op -> Cdfg.Op.unop_to_string op
          | G.Mux -> "mux"
          | G.Const c -> Printf.sprintf "const %d" c
          | G.Fe r -> "FE " ^ r
          | G.St r | G.Del r -> "ST/DEL " ^ r
          | G.Ss_in r | G.Ss_out r -> "ss " ^ r
        in
        Format.fprintf fmt "  node %d (%s): %a@," v.node kind_text pp_interval
          v.range)
      report.violations;
    Format.fprintf fmt "@]";
    ignore g
  end
