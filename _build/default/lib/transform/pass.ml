type t = { name : string; run : Cdfg.Graph.t -> bool }

let run_fixpoint ?(max_rounds = 100) passes g =
  let rec loop rounds =
    if rounds >= max_rounds then
      failwith
        (Printf.sprintf "transformation pipeline did not converge in %d rounds"
           max_rounds);
    let changed =
      List.fold_left (fun changed pass -> pass.run g || changed) false passes
    in
    if changed then loop (rounds + 1) else rounds + 1
  in
  loop 0

let checked pass =
  {
    pass with
    run =
      (fun g ->
        let changed = pass.run g in
        Cdfg.Graph.validate g;
        changed);
  }
