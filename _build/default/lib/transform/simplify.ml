let default_passes =
  [
    Rewrites.const_fold;
    Rewrites.algebraic;
    Cse.pass;
    Forward.store_to_fetch;
    Forward.dead_store;
    Dce.pass;
    Reassoc.pass;
  ]

let extended_passes = default_passes @ [ Rewrites.strength_reduce; Hoist.pass ]

type report = {
  rounds : int;
  before : Cdfg.Graph.stats;
  after : Cdfg.Graph.stats;
}

let minimize ?(passes = default_passes) ?(validate = true) g =
  let passes = if validate then List.map Pass.checked passes else passes in
  let before = Cdfg.Graph.stats g in
  let rounds = Pass.run_fixpoint passes g in
  let after = Cdfg.Graph.stats g in
  { rounds; before; after }

let pp_report fmt { rounds; before; after } =
  Format.fprintf fmt "@[<v>rounds: %d@,before: %a@,after:  %a@]" rounds
    Cdfg.Graph.pp_stats before Cdfg.Graph.pp_stats after
