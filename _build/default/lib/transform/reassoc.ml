module G = Cdfg.Graph
module Op = Cdfg.Op

let associative = function
  | Op.Add | Op.Mul | Op.Band | Op.Bor | Op.Bxor -> true
  | Op.Sub | Op.Div | Op.Mod | Op.Shl | Op.Shr | Op.Lt | Op.Le | Op.Gt
  | Op.Ge | Op.Eq | Op.Ne | Op.Land | Op.Lor ->
    false

(* Collects the leaves of the maximal single-use chain of [op] rooted at
   [id], left to right, together with the chain's depth. *)
let rec chain_leaves g op use_counts id ~is_root =
  let single_use = match Hashtbl.find_opt use_counts id with Some 1 -> true | _ -> false in
  match G.kind g id with
  | G.Binop op' when op' = op && (is_root || single_use) ->
    let inputs = G.inputs g id in
    let a = List.nth inputs 0 and b = List.nth inputs 1 in
    let leaves_a, depth_a = chain_leaves g op use_counts a ~is_root:false in
    let leaves_b, depth_b = chain_leaves g op use_counts b ~is_root:false in
    (leaves_a @ leaves_b, 1 + max depth_a depth_b)
  | _ -> ([ id ], 0)

let rec build_balanced g op leaves =
  match leaves with
  | [] -> invalid_arg "build_balanced: no leaves"
  | [ leaf ] -> (leaf, 0)
  | _ ->
    let mid = (List.length leaves + 1) / 2 in
    let left, right = Fpfa_util.Listx.split_at mid leaves in
    let left_id, dl = build_balanced g op left in
    let right_id, dr = build_balanced g op right in
    (G.add g (G.Binop op) [ left_id; right_id ], 1 + max dl dr)

let run g =
  let changed = ref false in
  let use_counts = Hashtbl.create 64 in
  let consumers = G.consumers g in
  Hashtbl.iter
    (fun producer uses -> Hashtbl.replace use_counts producer (List.length uses))
    consumers;
  let visit id =
    if G.mem g id then
      match G.kind g id with
      | G.Binop op when associative op ->
        (* Only rebalance chain roots: nodes whose consumer is not the same
           single-use chain. *)
        let is_chain_interior =
          match Hashtbl.find_opt consumers id with
          | Some [ (c, _) ] when G.mem g c -> (
            Hashtbl.find_opt use_counts id = Some 1
            &&
            match G.kind g c with
            | G.Binop op' -> op' = op
            | _ -> false)
          | _ -> false
        in
        if not is_chain_interior then begin
          let leaves, depth = chain_leaves g op use_counts id ~is_root:true in
          let n = List.length leaves in
          if n > 2 then begin
            let balanced_depth =
              int_of_float (ceil (log (float_of_int n) /. log 2.0))
            in
            if balanced_depth < depth then begin
              let root, _ = build_balanced g op leaves in
              G.replace_uses g id ~by:root;
              changed := true
            end
          end
        end
      | _ -> ()
  in
  List.iter visit (G.node_ids g);
  !changed

let pass = { Pass.name = "reassociate"; run }
