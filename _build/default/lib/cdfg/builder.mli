(** Translation of the C subset into a CDFG (paper Section III-V).

    Every scalar and array becomes a statespace region; reads become [Fe]
    nodes and writes become [St] nodes threaded on the region's token.
    [if]/[else] is if-converted: assignments under a condition [p] store
    [Mux (p, new, old)], so the graph stays a DAG. Loops must have been
    fully unrolled beforehand ({!Cfront.Unroll}); a residual loop is
    rejected.

    The resulting graph is deliberately naive — one [Fe] per read, one [St]
    per write, constants shared — exactly the "generated CDFG" of paper
    Section V. The {!Transform} passes then minimise it. *)

exception Unsupported of string
(** Residual loop, predicated/early [return], or other construct outside the
    mappable subset. *)

val build : ?delete_locals:bool -> Ast_in.func_with_env -> Graph.t
(** Builds the CDFG of one (loop-free) function. When [delete_locals] is
    true, declared (non-implicit) regions are [Del]eted from the statespace
    before the final [Ss_out] (paper Fig. 2's DEL primitive); default
    false so that final local values remain observable.

    The graph is validated before being returned. *)

val build_func : ?delete_locals:bool -> Cfront.Ast.func -> Graph.t
(** [build] after running {!Cfront.Sema.check_func}. *)

val build_program : ?delete_locals:bool -> ?func:string -> string -> Graph.t
(** Convenience: parse C source, inline user-defined calls, unroll loops,
    then build the CDFG of function [func] (default ["main"]).
    @raise Not_found when the function does not exist. *)
