(** Graphviz export of CDFGs (for inspecting graphs like paper Fig. 3). *)

val to_string : Graph.t -> string
(** DOT source: value edges solid, token edges bold, order-only edges
    dashed. *)

val to_file : Graph.t -> string -> unit
(** Writes the DOT source to a path. *)
