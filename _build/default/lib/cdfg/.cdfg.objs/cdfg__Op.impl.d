lib/cdfg/op.ml: Cfront
