lib/cdfg/serialize.mli: Graph
