lib/cdfg/op.mli: Cfront
