lib/cdfg/graph.mli: Format Hashtbl Map Op Set
