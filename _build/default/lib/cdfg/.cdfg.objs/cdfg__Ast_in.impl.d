lib/cdfg/ast_in.ml: Cfront
