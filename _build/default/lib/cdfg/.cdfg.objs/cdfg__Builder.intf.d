lib/cdfg/builder.mli: Ast_in Cfront Graph
