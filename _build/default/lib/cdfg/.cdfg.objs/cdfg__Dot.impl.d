lib/cdfg/dot.ml: Array Buffer Fun Graph List Op Printf
