lib/cdfg/eval.ml: Array Cfront Format Graph Hashtbl Int List Map Op Set String
