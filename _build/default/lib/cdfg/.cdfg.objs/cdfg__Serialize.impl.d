lib/cdfg/serialize.ml: Array Fpfa_util Fun Graph Hashtbl List Op Printf
