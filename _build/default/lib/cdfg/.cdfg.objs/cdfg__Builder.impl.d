lib/cdfg/builder.ml: Ast_in Cfront Format Graph Hashtbl List Op String
