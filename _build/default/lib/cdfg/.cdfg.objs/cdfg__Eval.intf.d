lib/cdfg/eval.mli: Cfront Format Graph
