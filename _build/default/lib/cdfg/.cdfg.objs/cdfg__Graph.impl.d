lib/cdfg/graph.ml: Array Format Fpfa_util Hashtbl Int List Map Op Set String
