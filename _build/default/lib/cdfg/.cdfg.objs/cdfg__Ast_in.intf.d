lib/cdfg/ast_in.mli: Cfront
