lib/cdfg/dot.mli: Graph
