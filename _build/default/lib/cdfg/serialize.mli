(** Binary serialisation of CDFGs.

    A compact little-endian format for saving minimised graphs to disk and
    for embedding them in tile configurations (see
    {!Mapping.Encode}). Round-trip is exact: node ids, regions, order
    edges and named outputs are all preserved. *)

exception Corrupt of string

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** @raise Corrupt on malformed input (bad magic, truncation, unknown
    tags). The decoded graph passes [Graph.validate] if the encoded one
    did. *)

val to_file : Graph.t -> string -> unit
val of_file : string -> Graph.t

(** {2 Id-stable variants}

    Encoding renumbers nodes topologically, so callers that embed node ids
    next to the graph (the configuration encoder) need the mapping. *)

val to_string_mapped : Graph.t -> string * (Graph.id -> int)
(** The encoded bytes plus the id -> encoded-position mapping. *)

val of_string_mapped : string -> Graph.t * (int -> Graph.id)
(** The decoded graph plus the encoded-position -> new-id mapping. *)
