(** Primitive arithmetic/logic operations of CDFG nodes.

    These are the word-level operations an FPFA ALU implements. Logical
    [Land]/[Lor] are strict here (both operands evaluated) — sound because
    CDFG expressions are pure and all partial operations are made total. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type unop = Neg | Bnot | Lnot

val eval_binop : binop -> int -> int -> int
(** Total semantics: [x/0 = x%0 = 0]; out-of-range shift amounts yield 0;
    comparisons and logical operations yield 0/1. *)

val eval_unop : unop -> int -> int

val commutative : binop -> bool

val is_multiplier_class : binop -> bool
(** Operations that occupy the ALU's multiplier stage (Mul/Div/Mod). *)

val binop_of_ast : Cfront.Ast.binop -> binop
val unop_of_ast : Cfront.Ast.unop -> unop

val binop_to_string : binop -> string
val unop_to_string : unop -> string

val all_binops : binop list
val all_unops : unop list
