let node_label (n : Graph.node) =
  match n.Graph.kind with
  | Graph.Const c -> string_of_int c
  | Graph.Binop op -> Op.binop_to_string op
  | Graph.Unop op -> Op.unop_to_string op
  | Graph.Mux -> "MUX"
  | Graph.Ss_in region -> Printf.sprintf "ss_in(%s)" region
  | Graph.Ss_out region -> Printf.sprintf "ss_out(%s)" region
  | Graph.Fe region -> Printf.sprintf "FE %s" region
  | Graph.St region -> Printf.sprintf "ST %s" region
  | Graph.Del region -> Printf.sprintf "DEL %s" region

let node_shape (n : Graph.node) =
  match n.Graph.kind with
  | Graph.Const _ -> "plaintext"
  | Graph.Fe _ | Graph.St _ | Graph.Del _ -> "box"
  | Graph.Ss_in _ | Graph.Ss_out _ -> "ellipse"
  | Graph.Mux -> "trapezium"
  | Graph.Binop _ | Graph.Unop _ -> "circle"

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" (Graph.name g));
  Buffer.add_string buf "  rankdir=TB;\n  node [fontsize=10];\n";
  Graph.iter g (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=%S shape=%s];\n" n.Graph.id
           (node_label n) (node_shape n)));
  Graph.iter g (fun n ->
      Array.iteri
        (fun port producer ->
          let token_edge = Graph.produces_token (Graph.kind g producer) in
          let style = if token_edge then " [style=bold]" else "" in
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [taillabel=\"\" headlabel=\"%d\"]%s;\n"
               producer n.Graph.id port style))
        n.Graph.inputs;
      List.iter
        (fun before ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [style=dashed constraint=true];\n"
               before n.Graph.id))
        n.Graph.order_after);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))
