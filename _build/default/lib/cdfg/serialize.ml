module B = Fpfa_util.Bytesio

exception Corrupt of string

let magic = "FCDF"
let version = 1

let binop_code op =
  match
    Fpfa_util.Listx.index_of (fun candidate -> candidate = op) Op.all_binops
  with
  | Some i -> i
  | None -> assert false

let binop_of_code code =
  match List.nth_opt Op.all_binops code with
  | Some op -> op
  | None -> raise (Corrupt (Printf.sprintf "unknown binop code %d" code))

let unop_code op =
  match
    Fpfa_util.Listx.index_of (fun candidate -> candidate = op) Op.all_unops
  with
  | Some i -> i
  | None -> assert false

let unop_of_code code =
  match List.nth_opt Op.all_unops code with
  | Some op -> op
  | None -> raise (Corrupt (Printf.sprintf "unknown unop code %d" code))

let write_kind w (kind : Graph.kind) =
  match kind with
  | Graph.Const v ->
    B.u8 w 0;
    B.i64 w v
  | Graph.Binop op ->
    B.u8 w 1;
    B.u8 w (binop_code op)
  | Graph.Unop op ->
    B.u8 w 2;
    B.u8 w (unop_code op)
  | Graph.Mux -> B.u8 w 3
  | Graph.Ss_in region ->
    B.u8 w 4;
    B.str w region
  | Graph.Ss_out region ->
    B.u8 w 5;
    B.str w region
  | Graph.Fe region ->
    B.u8 w 6;
    B.str w region
  | Graph.St region ->
    B.u8 w 7;
    B.str w region
  | Graph.Del region ->
    B.u8 w 8;
    B.str w region

let read_kind r : Graph.kind =
  match B.read_u8 r with
  | 0 -> Graph.Const (B.read_i64 r)
  | 1 -> Graph.Binop (binop_of_code (B.read_u8 r))
  | 2 -> Graph.Unop (unop_of_code (B.read_u8 r))
  | 3 -> Graph.Mux
  | 4 -> Graph.Ss_in (B.read_str r)
  | 5 -> Graph.Ss_out (B.read_str r)
  | 6 -> Graph.Fe (B.read_str r)
  | 7 -> Graph.St (B.read_str r)
  | 8 -> Graph.Del (B.read_str r)
  | tag -> raise (Corrupt (Printf.sprintf "unknown node kind tag %d" tag))

let to_string_mapped g =
  let w = B.writer () in
  (* header *)
  B.str w magic;
  B.u8 w version;
  B.str w (Graph.name g);
  (* regions *)
  B.list w (Graph.regions g) (fun w (region, (info : Graph.region_info)) ->
      B.str w region;
      B.option w info.Graph.size B.i32;
      B.u8 w (if info.Graph.implicit then 1 else 0));
  (* Nodes in topological order with ids renumbered to their position:
     transforms can leave inputs pointing at later-created nodes, so raw
     ids are not decode-safe, but topological positions always are. *)
  let order = Graph.topo_order g in
  let position = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace position id i) order;
  let pos id = Hashtbl.find position id in
  let nodes = List.map (Graph.node g) order in
  B.list w nodes (fun w (n : Graph.node) ->
      write_kind w n.Graph.kind;
      B.list w (Array.to_list n.Graph.inputs) (fun w id -> B.i32 w (pos id));
      B.list w n.Graph.order_after (fun w id -> B.i32 w (pos id)));
  (* named outputs *)
  B.list w (Graph.outputs g) (fun w (name, id) ->
      B.str w name;
      B.i32 w (pos id));
  (B.contents w, pos)

let to_string g = fst (to_string_mapped g)

let of_string_mapped data =
  try
    let r = B.reader data in
    if B.read_str r <> magic then raise (Corrupt "bad magic");
    let v = B.read_u8 r in
    if v <> version then raise (Corrupt (Printf.sprintf "unknown version %d" v));
    let name = B.read_str r in
    let g = Graph.create name in
    let regions =
      B.read_list r (fun r ->
          let region = B.read_str r in
          let size = B.read_option r B.read_i32 in
          let implicit = B.read_u8 r = 1 in
          (region, { Graph.size; implicit }))
    in
    List.iter (fun (region, info) -> Graph.declare_region g region info) regions;
    (* Nodes were written in ascending id order; Graph.add assigns fresh
       ids 0,1,2,... so a remapping table translates encoded ids. *)
    let raw_nodes =
      B.read_list r (fun r ->
          let kind = read_kind r in
          let inputs = B.read_list r B.read_i32 in
          let order_after = B.read_list r B.read_i32 in
          (kind, inputs, order_after))
    in
    let remap = Hashtbl.create 64 in
    let translate pos =
      match Hashtbl.find_opt remap pos with
      | Some id -> id
      | None ->
        raise (Corrupt (Printf.sprintf "forward reference to node %d" pos))
    in
    List.iteri
      (fun pos (kind, inputs, _) ->
        let id = Graph.add g kind (List.map translate inputs) in
        Hashtbl.replace remap pos id)
      raw_nodes;
    List.iteri
      (fun pos (_, _, order_after) ->
        List.iter
          (fun before ->
            Graph.add_order g (translate pos) ~after:(translate before))
          order_after)
      raw_nodes;
    let outputs =
      B.read_list r (fun r ->
          let name = B.read_str r in
          let id = B.read_i32 r in
          (name, id))
    in
    List.iter (fun (name, id) -> Graph.set_output g name (translate id)) outputs;
    if not (B.at_end r) then raise (Corrupt "trailing bytes");
    (g, translate)
  with
  | B.Corrupt msg -> raise (Corrupt msg)
  | Graph.Invalid msg -> raise (Corrupt msg)

let of_string data = fst (of_string_mapped data)

let to_file g path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
