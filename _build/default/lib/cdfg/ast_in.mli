(** Input package for the CDFG builder: a function together with its symbol
    table. *)

type func_with_env = { func : Cfront.Ast.func; env : Cfront.Sema.env }

val of_func : Cfront.Ast.func -> func_with_env
(** Runs semantic analysis to obtain the environment. *)
