type id = int

module Id_set = Set.Make (Int)
module Id_map = Map.Make (Int)

type kind =
  | Const of int
  | Binop of Op.binop
  | Unop of Op.unop
  | Mux
  | Ss_in of string
  | Ss_out of string
  | Fe of string
  | St of string
  | Del of string

type node = {
  id : id;
  kind : kind;
  inputs : id array;
  order_after : id list;
}

type region_info = { size : int option; implicit : bool }

type t = {
  fname : string;
  nodes : (id, node) Hashtbl.t;
  region_tbl : (string, region_info) Hashtbl.t;
  mutable next_id : id;
  mutable named_outputs : (string * id) list;
}

exception Invalid of string

let invalidf fmt = Format.kasprintf (fun msg -> raise (Invalid msg)) fmt

let create fname =
  {
    fname;
    nodes = Hashtbl.create 64;
    region_tbl = Hashtbl.create 8;
    next_id = 0;
    named_outputs = [];
  }

let name g = g.fname

let declare_region g region info = Hashtbl.replace g.region_tbl region info

let region_info g region = Hashtbl.find_opt g.region_tbl region

let regions g =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) g.region_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let arity = function
  | Const _ | Ss_in _ -> 0
  | Unop _ | Ss_out _ -> 1
  | Binop _ | Fe _ -> 2
  | Mux | St _ -> 3
  | Del _ -> 2

let mem g id = Hashtbl.mem g.nodes id

let node g id =
  match Hashtbl.find_opt g.nodes id with
  | Some n -> n
  | None -> invalidf "node %d does not exist" id

let kind g id = (node g id).kind
let inputs g id = Array.to_list (node g id).inputs
let order_after g id = (node g id).order_after
let preds g id =
  let n = node g id in
  Array.to_list n.inputs @ n.order_after

let check_ref g id =
  if not (Hashtbl.mem g.nodes id) then invalidf "dangling node reference %d" id

let add g kind inputs =
  if List.length inputs <> arity kind then
    invalidf "wrong input arity for node (expected %d, got %d)" (arity kind)
      (List.length inputs);
  List.iter (check_ref g) inputs;
  let id = g.next_id in
  g.next_id <- id + 1;
  Hashtbl.replace g.nodes id
    { id; kind; inputs = Array.of_list inputs; order_after = [] };
  id

let add_order g id ~after =
  check_ref g after;
  let n = node g id in
  if after <> id && not (List.mem after n.order_after) then
    Hashtbl.replace g.nodes id { n with order_after = after :: n.order_after }

let set_output g output_name id =
  check_ref g id;
  g.named_outputs <-
    (output_name, id) :: List.remove_assoc output_name g.named_outputs

let outputs g =
  List.sort (fun (a, _) (b, _) -> String.compare a b) g.named_outputs

let set_inputs g id inputs =
  let n = node g id in
  if List.length inputs <> Array.length n.inputs then
    invalidf "set_inputs: arity change on node %d" id;
  List.iter (check_ref g) inputs;
  Hashtbl.replace g.nodes id { n with inputs = Array.of_list inputs }

let replace_uses g old ~by =
  check_ref g by;
  Hashtbl.iter
    (fun id n ->
      let changed = ref false in
      let inputs =
        Array.map
          (fun input ->
            if input = old then begin
              changed := true;
              by
            end
            else input)
          n.inputs
      in
      let order_after =
        if List.mem old n.order_after then begin
          changed := true;
          Fpfa_util.Listx.uniq compare
            (List.map (fun x -> if x = old then by else x) n.order_after)
          |> List.filter (fun x -> x <> id)
        end
        else n.order_after
      in
      if !changed then Hashtbl.replace g.nodes id { n with inputs; order_after })
    g.nodes;
  g.named_outputs <-
    List.map (fun (k, v) -> (k, if v = old then by else v)) g.named_outputs

let clear_order g id =
  let n = node g id in
  Hashtbl.replace g.nodes id { n with order_after = [] }

let drop_order_references g id =
  Hashtbl.iter
    (fun nid n ->
      if List.mem id n.order_after then
        Hashtbl.replace g.nodes nid
          { n with order_after = List.filter (fun x -> x <> id) n.order_after })
    g.nodes

let node_ids g =
  Hashtbl.fold (fun id _ acc -> id :: acc) g.nodes [] |> List.sort compare

let node_count g = Hashtbl.length g.nodes

let iter g f = List.iter (fun id -> f (node g id)) (node_ids g)

let fold g ~init ~f =
  List.fold_left (fun acc id -> f acc (node g id)) init (node_ids g)

let consumers g =
  let tbl = Hashtbl.create (Hashtbl.length g.nodes) in
  iter g (fun n ->
      Array.iteri
        (fun port producer ->
          let old =
            match Hashtbl.find_opt tbl producer with Some l -> l | None -> []
          in
          Hashtbl.replace tbl producer ((n.id, port) :: old))
        n.inputs);
  tbl

let use_count g id =
  let data_uses =
    fold g ~init:0 ~f:(fun acc n ->
        acc + Array.fold_left (fun c input -> if input = id then c + 1 else c) 0 n.inputs)
  in
  let output_uses =
    List.length (List.filter (fun (_, v) -> v = id) g.named_outputs)
  in
  data_uses + output_uses

let remove g id =
  if use_count g id > 0 then invalidf "removing node %d which still has uses" id;
  (* Drop order edges pointing at the removed node. *)
  Hashtbl.iter
    (fun nid n ->
      if List.mem id n.order_after then
        Hashtbl.replace g.nodes nid
          { n with order_after = List.filter (fun x -> x <> id) n.order_after })
    g.nodes;
  Hashtbl.remove g.nodes id

let find_region_node g region ~test =
  let found =
    fold g ~init:None ~f:(fun acc n ->
        match acc with
        | Some _ -> acc
        | None -> if test n.kind region then Some n.id else None)
  in
  found

let ss_in_of g region =
  find_region_node g region ~test:(fun kind r ->
      match kind with Ss_in r' -> String.equal r r' | _ -> false)

let ss_out_of g region =
  find_region_node g region ~test:(fun kind r ->
      match kind with Ss_out r' -> String.equal r r' | _ -> false)

(* Kahn's algorithm with a min-heap on ids (a sorted module Set) so the
   resulting order is deterministic. *)
let topo_order g =
  let succ = Hashtbl.create (Hashtbl.length g.nodes) in
  let indegree = Hashtbl.create (Hashtbl.length g.nodes) in
  iter g (fun n -> Hashtbl.replace indegree n.id 0);
  iter g (fun n ->
      let unique_preds = Fpfa_util.Listx.uniq compare (preds g n.id) in
      Hashtbl.replace indegree n.id (List.length unique_preds);
      List.iter
        (fun p ->
          let old = match Hashtbl.find_opt succ p with Some l -> l | None -> [] in
          Hashtbl.replace succ p (n.id :: old))
        unique_preds);
  let ready =
    Hashtbl.fold
      (fun id deg acc -> if deg = 0 then Id_set.add id acc else acc)
      indegree Id_set.empty
  in
  let rec loop ready acc count =
    match Id_set.min_elt_opt ready with
    | None ->
      if count <> Hashtbl.length g.nodes then
        invalidf "graph %s has a cycle" g.fname;
      List.rev acc
    | Some id ->
      let ready = Id_set.remove id ready in
      let ready =
        List.fold_left
          (fun ready s ->
            let deg = Hashtbl.find indegree s - 1 in
            Hashtbl.replace indegree s deg;
            if deg = 0 then Id_set.add s ready else ready)
          ready
          (match Hashtbl.find_opt succ id with Some l -> l | None -> [])
      in
      loop ready (id :: acc) (count + 1)
  in
  loop ready [] 0

let depth g =
  let order = topo_order g in
  let depth_tbl = Hashtbl.create (List.length order) in
  List.iter
    (fun id ->
      let d =
        List.fold_left
          (fun acc p -> max acc (Hashtbl.find depth_tbl p + 1))
          0 (preds g id)
      in
      Hashtbl.replace depth_tbl id d)
    order;
  fun id ->
    match Hashtbl.find_opt depth_tbl id with
    | Some d -> d
    | None -> invalidf "depth: unknown node %d" id

let produces_token = function
  | Ss_in _ | St _ | Del _ -> true
  | Const _ | Binop _ | Unop _ | Mux | Ss_out _ | Fe _ -> false

let produces_value = function
  | Const _ | Binop _ | Unop _ | Mux | Fe _ -> true
  | Ss_in _ | Ss_out _ | St _ | Del _ -> false

let token_region g id =
  match kind g id with
  | Ss_in r | St r | Del r -> Some r
  | Const _ | Binop _ | Unop _ | Mux | Ss_out _ | Fe _ -> None

(* Port typing: for each node kind, which input ports expect a token of the
   node's own region (port 0 of Fe/St/Del/Ss_out) and which expect values. *)
let validate g =
  iter g (fun n ->
      if Array.length n.inputs <> arity n.kind then
        invalidf "node %d: arity mismatch" n.id;
      Array.iter
        (fun input ->
          if not (mem g input) then
            invalidf "node %d: dangling input %d" n.id input)
        n.inputs;
      List.iter
        (fun input ->
          if not (mem g input) then
            invalidf "node %d: dangling order edge %d" n.id input)
        n.order_after;
      let expect_value port =
        let p = n.inputs.(port) in
        if not (produces_value (kind g p)) then
          invalidf "node %d: input port %d expects a value, got a token" n.id
            port
      in
      let expect_token port region =
        let p = n.inputs.(port) in
        if not (produces_token (kind g p)) then
          invalidf "node %d: input port %d expects a statespace token" n.id
            port;
        match token_region g p with
        | Some r when String.equal r region -> ()
        | Some r ->
          invalidf "node %d: token of region %s flows into region %s" n.id r
            region
        | None -> assert false
      in
      let check_region region =
        if region_info g region = None then
          invalidf "node %d references undeclared region %s" n.id region
      in
      match n.kind with
      | Const _ -> ()
      | Binop _ ->
        expect_value 0;
        expect_value 1
      | Unop _ -> expect_value 0
      | Mux ->
        expect_value 0;
        expect_value 1;
        expect_value 2
      | Ss_in region -> check_region region
      | Ss_out region ->
        check_region region;
        expect_token 0 region
      | Fe region ->
        check_region region;
        expect_token 0 region;
        expect_value 1
      | St region ->
        check_region region;
        expect_token 0 region;
        expect_value 1;
        expect_value 2
      | Del region ->
        check_region region;
        expect_token 0 region;
        expect_value 1);
  (* At most one Ss_in / Ss_out per region. *)
  let count_kind test =
    let tbl = Hashtbl.create 8 in
    iter g (fun n ->
        match test n.kind with
        | Some region ->
          let old =
            match Hashtbl.find_opt tbl region with Some c -> c | None -> 0
          in
          Hashtbl.replace tbl region (old + 1)
        | None -> ());
    tbl
  in
  let ins = count_kind (function Ss_in r -> Some r | _ -> None) in
  let outs = count_kind (function Ss_out r -> Some r | _ -> None) in
  Hashtbl.iter
    (fun region c ->
      if c > 1 then invalidf "region %s has %d Ss_in nodes" region c)
    ins;
  Hashtbl.iter
    (fun region c ->
      if c > 1 then invalidf "region %s has %d Ss_out nodes" region c)
    outs;
  List.iter
    (fun (oname, id) ->
      if not (mem g id) then invalidf "named output %s is dangling" oname;
      if not (produces_value (kind g id)) then
        invalidf "named output %s is not a value" oname)
    g.named_outputs;
  (* Acyclicity (raises on cycles). *)
  ignore (topo_order g)

let copy g =
  let g' = create g.fname in
  Hashtbl.iter (fun id n -> Hashtbl.replace g'.nodes id n) g.nodes;
  Hashtbl.iter (fun r info -> Hashtbl.replace g'.region_tbl r info) g.region_tbl;
  g'.next_id <- g.next_id;
  g'.named_outputs <- g.named_outputs;
  g'

type stats = {
  total : int;
  consts : int;
  fetches : int;
  stores : int;
  deletes : int;
  muxes : int;
  multiplies : int;
  adds : int;
  other_alu : int;
  ss_nodes : int;
  critical_path : int;
}

let stats g =
  let zero =
    {
      total = 0;
      consts = 0;
      fetches = 0;
      stores = 0;
      deletes = 0;
      muxes = 0;
      multiplies = 0;
      adds = 0;
      other_alu = 0;
      ss_nodes = 0;
      critical_path = 0;
    }
  in
  let s =
    fold g ~init:zero ~f:(fun s n ->
        let s = { s with total = s.total + 1 } in
        match n.kind with
        | Const _ -> { s with consts = s.consts + 1 }
        | Fe _ -> { s with fetches = s.fetches + 1 }
        | St _ -> { s with stores = s.stores + 1 }
        | Del _ -> { s with deletes = s.deletes + 1 }
        | Mux -> { s with muxes = s.muxes + 1 }
        | Ss_in _ | Ss_out _ -> { s with ss_nodes = s.ss_nodes + 1 }
        | Binop op when Op.is_multiplier_class op ->
          { s with multiplies = s.multiplies + 1 }
        | Binop (Op.Add | Op.Sub) -> { s with adds = s.adds + 1 }
        | Binop _ | Unop _ -> { s with other_alu = s.other_alu + 1 })
  in
  let depth_of = depth g in
  let critical_path =
    fold g ~init:0 ~f:(fun acc n -> max acc (depth_of n.id + 1))
  in
  { s with critical_path }

let pp_stats fmt s =
  Format.fprintf fmt
    "total=%d consts=%d FE=%d ST=%d DEL=%d mux=%d mul=%d add/sub=%d other=%d \
     ss=%d critical_path=%d"
    s.total s.consts s.fetches s.stores s.deletes s.muxes s.multiplies s.adds
    s.other_alu s.ss_nodes s.critical_path
