type func_with_env = { func : Cfront.Ast.func; env : Cfront.Sema.env }

let of_func func = { func; env = Cfront.Sema.check_func func }
