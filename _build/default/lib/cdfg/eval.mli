(** CDFG evaluator: executes a graph on concrete inputs.

    This gives the CDFG its reference semantics. Statespace tokens evaluate
    to persistent stores, so fetches that share a token see the same memory
    snapshot regardless of evaluation order — exactly the commutativity the
    token discipline encodes. Used to check that every transformation pass
    and the final mapped program preserve behaviour. *)

type result = {
  memory : (string * int array) list;
      (** final contents of every region, sorted by name *)
  named : (string * int) list;  (** named value outputs, sorted by name *)
}

exception Error of string
(** Fetch of a deleted tuple, negative offset, or out-of-bounds access on a
    region of known size. *)

val run : ?memory_init:(string * int array) list -> Graph.t -> result
(** Evaluates the graph. [memory_init] seeds region contents (a scalar
    region is a 1-element array); unseeded cells read as 0. The final size
    of a region of unknown (implicit) size is the maximum of its seeded
    length and the highest offset stored to plus one. *)

val value_of : ?memory_init:(string * int array) list -> Graph.t -> Graph.id -> int
(** Evaluates the graph and returns the value of one (value-producing)
    node. *)

val equal_result : result -> result -> bool
(** Structural equality with zero-padding: regions compare equal when they
    agree on every index of the longer array (missing cells read as 0). *)

val conforms_to_interp :
  ?memory_init:(string * int array) list ->
  Cfront.Interp.state ->
  result ->
  bool
(** Compares the evaluator result against the reference interpreter state:
    every interpreter scalar/array must match the corresponding region
    (zero-padded), and the return values must agree. An interpreter symbol
    with no region in the graph (seeded but never mentioned) must still
    hold its [memory_init] contents. *)

val pp_result : Format.formatter -> result -> unit
