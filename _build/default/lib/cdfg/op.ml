type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type unop = Neg | Bnot | Lnot

let bool_int b = if b then 1 else 0

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Mod -> if b = 0 then 0 else a mod b
  | Shl -> if b < 0 || b > 62 then 0 else a lsl b
  | Shr -> if b < 0 || b > 62 then 0 else a asr b
  | Band -> a land b
  | Bor -> a lor b
  | Bxor -> a lxor b
  | Lt -> bool_int (a < b)
  | Le -> bool_int (a <= b)
  | Gt -> bool_int (a > b)
  | Ge -> bool_int (a >= b)
  | Eq -> bool_int (a = b)
  | Ne -> bool_int (a <> b)
  | Land -> bool_int (a <> 0 && b <> 0)
  | Lor -> bool_int (a <> 0 || b <> 0)

let eval_unop op a =
  match op with Neg -> -a | Bnot -> lnot a | Lnot -> bool_int (a = 0)

let commutative = function
  | Add | Mul | Band | Bor | Bxor | Eq | Ne | Land | Lor -> true
  | Sub | Div | Mod | Shl | Shr | Lt | Le | Gt | Ge -> false

let is_multiplier_class = function
  | Mul | Div | Mod -> true
  | Add | Sub | Shl | Shr | Band | Bor | Bxor | Lt | Le | Gt | Ge | Eq | Ne
  | Land | Lor ->
    false

let binop_of_ast = function
  | Cfront.Ast.Add -> Add
  | Cfront.Ast.Sub -> Sub
  | Cfront.Ast.Mul -> Mul
  | Cfront.Ast.Div -> Div
  | Cfront.Ast.Mod -> Mod
  | Cfront.Ast.Shl -> Shl
  | Cfront.Ast.Shr -> Shr
  | Cfront.Ast.Band -> Band
  | Cfront.Ast.Bor -> Bor
  | Cfront.Ast.Bxor -> Bxor
  | Cfront.Ast.Lt -> Lt
  | Cfront.Ast.Le -> Le
  | Cfront.Ast.Gt -> Gt
  | Cfront.Ast.Ge -> Ge
  | Cfront.Ast.Eq -> Eq
  | Cfront.Ast.Ne -> Ne
  | Cfront.Ast.Land -> Land
  | Cfront.Ast.Lor -> Lor

let unop_of_ast = function
  | Cfront.Ast.Neg -> Neg
  | Cfront.Ast.Bnot -> Bnot
  | Cfront.Ast.Lnot -> Lnot

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"

let unop_to_string = function Neg -> "neg" | Bnot -> "~" | Lnot -> "!"

let all_binops =
  [ Add; Sub; Mul; Div; Mod; Shl; Shr; Band; Bor; Bxor; Lt; Le; Gt; Ge; Eq; Ne; Land; Lor ]

let all_unops = [ Neg; Bnot; Lnot ]
