exception Unsupported of string

let unsupportedf fmt = Format.kasprintf (fun msg -> raise (Unsupported msg)) fmt

type state = {
  graph : Graph.t;
  tokens : (string, Graph.id) Hashtbl.t;  (** region -> current token node *)
  pending_reads : (string, Graph.id list) Hashtbl.t;
      (** fetches of the current token, to order the next store after *)
  const_cache : (int, Graph.id) Hashtbl.t;
}

let const st n =
  match Hashtbl.find_opt st.const_cache n with
  | Some id -> id
  | None ->
    let id = Graph.add st.graph (Graph.Const n) [] in
    Hashtbl.replace st.const_cache n id;
    id

let token st region =
  match Hashtbl.find_opt st.tokens region with
  | Some id -> id
  | None -> unsupportedf "region %s was not initialised" region

let record_read st region fe =
  let old =
    match Hashtbl.find_opt st.pending_reads region with
    | Some l -> l
    | None -> []
  in
  Hashtbl.replace st.pending_reads region (fe :: old)

(* A new token (St/Del) must be ordered after all fetches of the previous
   token: once mapped to hardware, the store overwrites the location. *)
let advance_token st region new_token =
  let reads =
    match Hashtbl.find_opt st.pending_reads region with
    | Some l -> l
    | None -> []
  in
  List.iter (fun fe -> Graph.add_order st.graph new_token ~after:fe) reads;
  Hashtbl.replace st.pending_reads region [];
  Hashtbl.replace st.tokens region new_token

let fetch st region offset =
  let fe = Graph.add st.graph (Graph.Fe region) [ token st region; offset ] in
  record_read st region fe;
  fe

let store st region offset value =
  let stn =
    Graph.add st.graph (Graph.St region) [ token st region; offset; value ]
  in
  advance_token st region stn

let delete st region offset =
  let del = Graph.add st.graph (Graph.Del region) [ token st region; offset ] in
  advance_token st region del

let binop st op a b = Graph.add st.graph (Graph.Binop op) [ a; b ]
let unop st op a = Graph.add st.graph (Graph.Unop op) [ a ]
let mux st cond if_true if_false =
  Graph.add st.graph Graph.Mux [ cond; if_true; if_false ]

let rec build_expr st (expr : Cfront.Ast.expr) =
  match expr with
  | Int_lit n -> const st n
  | Var name -> fetch st name (const st 0)
  | Index (name, idx) -> fetch st name (build_expr st idx)
  | Binop (op, a, b) ->
    let a = build_expr st a in
    let b = build_expr st b in
    binop st (Op.binop_of_ast op) a b
  | Unop (op, a) -> unop st (Op.unop_of_ast op) (build_expr st a)
  | Cond (c, a, b) ->
    let c = build_expr st c in
    let a = build_expr st a in
    let b = build_expr st b in
    mux st c a b
  | Call ("abs", [ a ]) ->
    let a = build_expr st a in
    let negative = binop st Op.Lt a (const st 0) in
    mux st negative (unop st Op.Neg a) a
  | Call ("min", [ a; b ]) ->
    let a = build_expr st a in
    let b = build_expr st b in
    mux st (binop st Op.Lt a b) a b
  | Call ("max", [ a; b ]) ->
    let a = build_expr st a in
    let b = build_expr st b in
    mux st (binop st Op.Gt a b) a b
  | Call (name, _) -> unsupportedf "intrinsic %s" name

(* [predicate] is the current if-conversion guard: [None] at top level,
   [Some p] inside conditional bodies. A guarded store writes
   [Mux (p, new, old)] back to the same address. *)
let assign st ~predicate region offset value =
  let value =
    match predicate with
    | None -> value
    | Some p ->
      (* Mux selects its if_true input when the guard is non-zero, so the
         freshly computed value goes first and the old cell value second. *)
      let old = fetch st region offset in
      mux st p value old
  in
  store st region offset value

let conjoin st predicate cond =
  match predicate with
  | None -> Some cond
  | Some p -> Some (binop st Op.Land p cond)

let rec build_stmt st ~predicate (stmt : Cfront.Ast.stmt) =
  match stmt with
  | Decl (name, None, init) ->
    let value =
      match init with Some e -> build_expr st e | None -> const st 0
    in
    assign st ~predicate name (const st 0) value
  | Decl (_, Some _, _) -> ()
  | Assign (Lvar name, e) ->
    let value = build_expr st e in
    assign st ~predicate name (const st 0) value
  | Assign (Lindex (name, idx), e) ->
    let offset = build_expr st idx in
    let value = build_expr st e in
    assign st ~predicate name offset value
  | If (cond, then_body, else_body) ->
    let cond = build_expr st cond in
    let then_pred = conjoin st predicate cond in
    List.iter (build_stmt st ~predicate:then_pred) then_body;
    if else_body <> [] then begin
      let not_cond = unop st Op.Lnot cond in
      let else_pred = conjoin st predicate not_cond in
      List.iter (build_stmt st ~predicate:else_pred) else_body
    end
  | While (_, _) ->
    unsupportedf
      "residual loop: the trip count is not static; unroll before building"
  | Return None -> ()
  | Return (Some e) ->
    if predicate <> None then unsupportedf "return under a condition";
    let value = build_expr st e in
    Graph.set_output st.graph "return" value
  | Expr e -> ignore (build_expr st e)

let build ?(delete_locals = false) { Ast_in.func; env } =
  let graph = Graph.create func.Cfront.Ast.name in
  let st =
    {
      graph;
      tokens = Hashtbl.create 16;
      pending_reads = Hashtbl.create 16;
      const_cache = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (sym : Cfront.Sema.symbol) ->
      let size =
        match sym.kind with
        | Cfront.Sema.Scalar -> Some 1
        | Cfront.Sema.Array size -> size
      in
      Graph.declare_region graph sym.name
        { Graph.size; implicit = sym.implicit };
      let ss_in = Graph.add graph (Graph.Ss_in sym.name) [] in
      Hashtbl.replace st.tokens sym.name ss_in)
    env;
  List.iter (build_stmt st ~predicate:None) func.Cfront.Ast.body;
  if delete_locals then
    List.iter
      (fun (sym : Cfront.Sema.symbol) ->
        if not sym.implicit then
          match sym.kind with
          | Cfront.Sema.Scalar -> delete st sym.name (const st 0)
          | Cfront.Sema.Array (Some size) ->
            for offset = 0 to size - 1 do
              delete st sym.name (const st offset)
            done
          | Cfront.Sema.Array None -> ())
      env;
  List.iter
    (fun (sym : Cfront.Sema.symbol) ->
      ignore (Graph.add graph (Graph.Ss_out sym.name) [ token st sym.name ]))
    env;
  Graph.validate graph;
  graph

let build_func ?delete_locals func = build ?delete_locals (Ast_in.of_func func)

let build_program ?delete_locals ?(func = "main") source =
  let program = Cfront.Parser.parse_program source in
  let program = Cfront.Inline.program program in
  let program = Cfront.Unroll.unroll_program program in
  let f =
    List.find (fun (f : Cfront.Ast.func) -> String.equal f.Cfront.Ast.name func) program
  in
  build_func ?delete_locals f
