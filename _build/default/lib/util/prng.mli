(** Deterministic pseudo-random number generator (splitmix64).

    All randomised components of the toolchain (random DAG generation, test
    input vectors) draw from this generator so that every run is exactly
    reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t
(** Snapshot of the generator state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)
