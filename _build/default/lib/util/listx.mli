(** List helpers shared across the FPFA toolchain. *)

val take : int -> 'a list -> 'a list
(** [take n xs] is the first [n] elements of [xs] (all of [xs] if shorter). *)

val drop : int -> 'a list -> 'a list
(** [drop n xs] is [xs] without its first [n] elements. *)

val split_at : int -> 'a list -> 'a list * 'a list
(** [split_at n xs] is [(take n xs, drop n xs)]. *)

val chunks : int -> 'a list -> 'a list list
(** [chunks n xs] groups [xs] into consecutive lists of length [n] (the last
    chunk may be shorter). [n] must be positive. *)

val index_of : ('a -> bool) -> 'a list -> int option
(** Position of the first element satisfying the predicate. *)

val uniq : ('a -> 'a -> int) -> 'a list -> 'a list
(** [uniq cmp xs] sorts [xs] with [cmp] and removes duplicates. *)

val sum : int list -> int

val max_by : ('a -> int) -> 'a list -> 'a option
(** Element maximising the measure; [None] on the empty list. First of the
    maximal elements wins, so the result is deterministic. *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi-1]. Empty when [lo >= hi]. *)

val init_fold : int -> 'acc -> ('acc -> int -> 'acc * 'a) -> 'acc * 'a list
(** [init_fold n acc f] threads [acc] through [f] for indices [0..n-1] and
    collects the produced elements in order. *)
