(** Little-endian binary encoding helpers for the serialisers. *)

type writer

val writer : unit -> writer
val contents : writer -> string
val length : writer -> int

val u8 : writer -> int -> unit
(** @raise Invalid_argument outside [0, 255]. *)

val u16 : writer -> int -> unit
(** @raise Invalid_argument outside [0, 65535]. *)

val i32 : writer -> int -> unit
(** Two's-complement 32-bit. @raise Invalid_argument outside range. *)

val i64 : writer -> int -> unit
(** Full OCaml int (63-bit), sign-extended into 8 bytes. *)

val str : writer -> string -> unit
(** u16 length followed by the bytes. *)

val blob : writer -> string -> unit
(** i32 length followed by the raw bytes (for large sections). *)

type reader

exception Corrupt of string

val reader : string -> reader
val at_end : reader -> bool

val read_u8 : reader -> int
val read_u16 : reader -> int
val read_i32 : reader -> int
val read_i64 : reader -> int
val read_str : reader -> string
val read_blob : reader -> string

val list : writer -> 'a list -> (writer -> 'a -> unit) -> unit
(** u32 count followed by the encoded items. *)

val read_list : reader -> (reader -> 'a) -> 'a list

val option : writer -> 'a option -> (writer -> 'a -> unit) -> unit
val read_option : reader -> (reader -> 'a) -> 'a option
