(** Plain-text table rendering for benchmark and report output. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out in aligned columns with a rule
    under the header. [aligns] defaults to left alignment everywhere; when
    shorter than the column count the remaining columns are left-aligned. *)

val print : ?aligns:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)
