type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step; the standard constants give good avalanche behaviour. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let mantissa = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  float_of_int mantissa /. 9007199254740992.0

let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
