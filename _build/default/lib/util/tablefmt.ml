type align = Left | Right

let pad align width s =
  let fill = String.make (max 0 (width - String.length s)) ' ' in
  match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = []) ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let align_of i =
    match List.nth_opt aligns i with Some a -> a | None -> Left
  in
  let line row =
    let cells =
      List.mapi
        (fun i w ->
          let cell = match List.nth_opt row i with Some c -> c | None -> "" in
          pad (align_of i) w cell)
        widths
    in
    String.concat "  " cells
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: rule :: body) @ [ "" ])

let print ?aligns ~header rows = print_string (render ?aligns ~header rows)
