lib/util/tablefmt.ml: List String
