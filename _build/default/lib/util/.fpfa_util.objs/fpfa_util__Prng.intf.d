lib/util/prng.mli:
