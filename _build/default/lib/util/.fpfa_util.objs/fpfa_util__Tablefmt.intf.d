lib/util/tablefmt.mli:
