lib/util/bytesio.mli:
