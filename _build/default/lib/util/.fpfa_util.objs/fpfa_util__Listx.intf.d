lib/util/listx.mli:
