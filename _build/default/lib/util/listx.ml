let take n xs =
  let rec loop n xs acc =
    match (n, xs) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> loop (n - 1) rest (x :: acc)
  in
  loop (max 0 n) xs []

let rec drop n xs =
  match (n, xs) with
  | 0, _ | _, [] -> xs
  | n, _ :: rest -> drop (n - 1) rest

let split_at n xs = (take n xs, drop n xs)

let chunks n xs =
  assert (n > 0);
  let rec loop xs acc =
    match xs with
    | [] -> List.rev acc
    | _ ->
      let chunk, rest = split_at n xs in
      loop rest (chunk :: acc)
  in
  loop xs []

let index_of pred xs =
  let rec loop i = function
    | [] -> None
    | x :: rest -> if pred x then Some i else loop (i + 1) rest
  in
  loop 0 xs

let uniq cmp xs =
  let sorted = List.sort cmp xs in
  let rec dedup = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: (y :: _ as rest) -> if cmp x y = 0 then dedup rest else x :: dedup rest
  in
  dedup sorted

let sum = List.fold_left ( + ) 0

let max_by measure = function
  | [] -> None
  | x :: rest ->
    let best =
      List.fold_left
        (fun best y -> if measure y > measure best then y else best)
        x rest
    in
    Some best

let range lo hi =
  let rec loop i acc = if i < lo then acc else loop (i - 1) (i :: acc) in
  loop (hi - 1) []

let init_fold n acc f =
  let rec loop i acc items =
    if i >= n then (acc, List.rev items)
    else
      let acc, item = f acc i in
      loop (i + 1) acc (item :: items)
  in
  loop 0 acc []
