type writer = Buffer.t

let writer () = Buffer.create 256
let contents = Buffer.contents
let length = Buffer.length

let u8 w v =
  if v < 0 || v > 0xFF then invalid_arg (Printf.sprintf "u8 out of range: %d" v);
  Buffer.add_uint8 w v

let u16 w v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "u16 out of range: %d" v);
  Buffer.add_uint16_le w v

let i32 w v =
  if v < -0x8000_0000 || v > 0x7FFF_FFFF then
    invalid_arg (Printf.sprintf "i32 out of range: %d" v);
  Buffer.add_int32_le w (Int32.of_int v)

let i64 w v = Buffer.add_int64_le w (Int64.of_int v)

let str w s =
  u16 w (String.length s);
  Buffer.add_string w s

let blob w s =
  i32 w (String.length s);
  Buffer.add_string w s

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > String.length r.data then
    raise (Corrupt (Printf.sprintf "truncated at byte %d" r.pos))

let at_end r = r.pos = String.length r.data

let read_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_u16 r =
  need r 2;
  let v = String.get_uint16_le r.data r.pos in
  r.pos <- r.pos + 2;
  v

let read_i32 r =
  need r 4;
  let v = String.get_int32_le r.data r.pos in
  r.pos <- r.pos + 4;
  Int32.to_int v

let read_i64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  Int64.to_int v

let read_str r =
  let n = read_u16 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_blob r =
  let n = read_i32 r in
  if n < 0 then raise (Corrupt "negative blob length");
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let list w items f =
  i32 w (List.length items);
  List.iter (f w) items

let read_list r f =
  let n = read_i32 r in
  if n < 0 then raise (Corrupt "negative list length");
  (* every item needs at least one byte: a length beyond the remaining
     input is corruption, not a huge allocation *)
  if n > String.length r.data - r.pos then
    raise (Corrupt "list length exceeds remaining input");
  List.init n (fun _ -> f r)

let option w v f =
  match v with
  | None -> u8 w 0
  | Some x ->
    u8 w 1;
    f w x

let read_option r f =
  match read_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | _ -> raise (Corrupt "bad option tag")
