(** Tokens of the C subset accepted by the FPFA frontend. *)

type t =
  | Int_lit of int
  | Ident of string
  | Kw_int
  | Kw_void
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_return
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Lt
  | Le
  | Gt
  | Ge
  | Eq_eq
  | Bang_eq
  | Amp_amp
  | Pipe_pipe
  | Shl
  | Shr
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Plus_plus
  | Minus_minus
  | Question
  | Colon
  | Comma
  | Semi
  | Eof

type pos = { line : int; col : int }
(** 1-based source position of the first character of a token. *)

val to_string : t -> string
(** Surface syntax of a token (for error messages and tests). *)

val equal : t -> t -> bool
