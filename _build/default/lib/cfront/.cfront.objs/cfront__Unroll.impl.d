lib/cfront/unroll.ml: Ast List Map Option String
