lib/cfront/parser.mli: Ast Token
