lib/cfront/unroll.mli: Ast
