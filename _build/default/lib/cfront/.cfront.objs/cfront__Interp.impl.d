lib/cfront/interp.ml: Array Ast Format Hashtbl List Option Sema String Unroll
