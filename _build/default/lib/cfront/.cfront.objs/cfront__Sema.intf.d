lib/cfront/sema.mli: Ast
