lib/cfront/token.ml: String
