lib/cfront/sema.ml: Ast Format Fpfa_util Hashtbl List Option String
