lib/cfront/parser.ml: Ast Lexer List Printf Token
