lib/cfront/ast.mli: Format
