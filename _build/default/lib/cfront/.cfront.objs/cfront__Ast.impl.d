lib/cfront/ast.ml: Format Fpfa_util List String
