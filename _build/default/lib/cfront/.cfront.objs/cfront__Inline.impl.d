lib/cfront/inline.ml: Ast Format Hashtbl List Map Option Printf Set String
