lib/cfront/token.mli:
