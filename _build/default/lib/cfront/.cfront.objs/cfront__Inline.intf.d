lib/cfront/inline.mli: Ast
