lib/cfront/interp.mli: Ast Format
