(** Recursive-descent parser for the C subset.

    Compound assignments ([+=], [++], ...) and [for] loops are desugared
    during parsing, so the AST only contains plain assignments and [while]
    loops. *)

exception Error of string * Token.pos

val parse_program : string -> Ast.program
(** Parses a translation unit (one or more function definitions).
    @raise Error on syntax errors (with source position).
    @raise Lexer.Error on lexical errors. *)

val parse_expr : string -> Ast.expr
(** Parses a single expression (used by tests). *)
