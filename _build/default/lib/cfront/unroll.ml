exception Too_many_iterations of int

module Env = Map.Make (String)

(* The partial environment maps scalar names to their statically known
   values; a missing binding means "unknown". *)

let bool_int b = if b then 1 else 0

let apply_binop op a b =
  match op with
  | Ast.Add -> Some (a + b)
  | Ast.Sub -> Some (a - b)
  | Ast.Mul -> Some (a * b)
  (* Division and shifts are total: x/0 = x%0 = 0 and out-of-range shift
     amounts yield 0. The whole toolchain (interpreter, CDFG evaluator, tile
     simulator) shares these semantics so that speculative dataflow
     execution cannot fault where sequential C would not. *)
  | Ast.Div -> Some (if b = 0 then 0 else a / b)
  | Ast.Mod -> Some (if b = 0 then 0 else a mod b)
  | Ast.Shl -> Some (if b < 0 || b > 62 then 0 else a lsl b)
  | Ast.Shr -> Some (if b < 0 || b > 62 then 0 else a asr b)
  | Ast.Band -> Some (a land b)
  | Ast.Bor -> Some (a lor b)
  | Ast.Bxor -> Some (a lxor b)
  | Ast.Lt -> Some (bool_int (a < b))
  | Ast.Le -> Some (bool_int (a <= b))
  | Ast.Gt -> Some (bool_int (a > b))
  | Ast.Ge -> Some (bool_int (a >= b))
  | Ast.Eq -> Some (bool_int (a = b))
  | Ast.Ne -> Some (bool_int (a <> b))
  | Ast.Land -> Some (bool_int (a <> 0 && b <> 0))
  | Ast.Lor -> Some (bool_int (a <> 0 || b <> 0))

let apply_unop op a =
  match op with
  | Ast.Neg -> -a
  | Ast.Bnot -> lnot a
  | Ast.Lnot -> bool_int (a = 0)

let rec eval_const_expr lookup expr =
  let ( let* ) = Option.bind in
  match expr with
  | Ast.Int_lit n -> Some n
  | Ast.Var name -> lookup name
  | Ast.Index (_, _) -> None
  | Ast.Binop (op, a, b) ->
    let* a = eval_const_expr lookup a in
    let* b = eval_const_expr lookup b in
    apply_binop op a b
  | Ast.Unop (op, a) ->
    let* a = eval_const_expr lookup a in
    Some (apply_unop op a)
  | Ast.Cond (c, a, b) ->
    let* c = eval_const_expr lookup c in
    if c <> 0 then eval_const_expr lookup a else eval_const_expr lookup b
  | Ast.Call ("abs", [ a ]) ->
    let* a = eval_const_expr lookup a in
    Some (abs a)
  | Ast.Call ("min", [ a; b ]) ->
    let* a = eval_const_expr lookup a in
    let* b = eval_const_expr lookup b in
    Some (min a b)
  | Ast.Call ("max", [ a; b ]) ->
    let* a = eval_const_expr lookup a in
    let* b = eval_const_expr lookup b in
    Some (max a b)
  | Ast.Call (_, _) -> None

let eval env expr = eval_const_expr (fun name -> Env.find_opt name env) expr

(* Scalars assigned anywhere inside a statement list: these lose their
   statically known value when the enclosing control flow is not resolved. *)
let rec assigned_scalars body acc =
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Ast.Decl (name, None, _) | Ast.Assign (Ast.Lvar name, _) -> name :: acc
      | Ast.Decl (_, Some _, _) | Ast.Assign (Ast.Lindex _, _) -> acc
      | Ast.If (_, then_body, else_body) ->
        assigned_scalars else_body (assigned_scalars then_body acc)
      | Ast.While (_, body) -> assigned_scalars body acc
      | Ast.Return _ | Ast.Expr _ -> acc)
    acc body

let kill_assigned body env =
  List.fold_left (fun env name -> Env.remove name env) env
    (assigned_scalars body [])

let rec process_body ~budget env body =
  let env, rev_stmts =
    List.fold_left
      (fun (env, acc) stmt ->
        let env, stmts = process_stmt ~budget env stmt in
        (env, List.rev_append stmts acc))
      (env, []) body
  in
  (env, List.rev rev_stmts)

and process_stmt ~budget env stmt =
  match stmt with
  | Ast.Decl (name, None, init) ->
    let env =
      match Option.map (eval env) init with
      | Some (Some v) -> Env.add name v env
      | Some None -> Env.remove name env
      | None -> Env.add name 0 env (* uninitialised scalars read as 0 *)
    in
    (env, [ stmt ])
  | Ast.Decl (_, Some _, _) -> (env, [ stmt ])
  | Ast.Assign (Ast.Lvar name, e) ->
    let env =
      match eval env e with
      | Some v -> Env.add name v env
      | None -> Env.remove name env
    in
    (env, [ stmt ])
  | Ast.Assign (Ast.Lindex _, _) -> (env, [ stmt ])
  | Ast.If (cond, then_body, else_body) -> (
    match eval env cond with
    | Some c ->
      process_body ~budget env (if c <> 0 then then_body else else_body)
    | None ->
      let env_then, then_body' = process_body ~budget env then_body in
      let _, else_body' = process_body ~budget env else_body in
      ignore env_then;
      let env' = kill_assigned (then_body @ else_body) env in
      (env', [ Ast.If (cond, then_body', else_body') ]))
  | Ast.While (cond, body) -> unroll_while ~budget env cond body
  | Ast.Return _ | Ast.Expr _ -> (env, [ stmt ])

(* Peels iterations while the condition stays statically known. If knowledge
   is lost mid-way (e.g. the induction variable is overwritten by an array
   read) the residual loop is emitted after the peeled copies. *)
and unroll_while ~budget env cond body =
  let rec peel env acc iterations =
    if iterations > !budget then raise (Too_many_iterations iterations);
    match eval env cond with
    | Some 0 -> (env, List.concat (List.rev acc))
    | Some _ ->
      let env, copy = process_body ~budget env body in
      peel env (copy :: acc) (iterations + 1)
    | None ->
      let env' = kill_assigned body env in
      let _, body' = process_body ~budget env' body in
      let residual = [ Ast.While (cond, body') ] in
      (env', List.concat (List.rev (residual :: acc)))
  in
  peel env [] 0

let unroll_body ?(max_iterations = 4096) body =
  let budget = ref max_iterations in
  let _, body' = process_body ~budget Env.empty body in
  body'

let unroll_func ?max_iterations (f : Ast.func) =
  { f with Ast.body = unroll_body ?max_iterations f.Ast.body }

let unroll_program ?max_iterations program =
  List.map (unroll_func ?max_iterations) program
