type state = {
  scalars : (string * int) list;
  arrays : (string * int array) list;
  return_value : int option;
}

exception Runtime_error of string

let errorf fmt = Format.kasprintf (fun msg -> raise (Runtime_error msg)) fmt

type store = {
  scalar_tbl : (string, int) Hashtbl.t;
  array_tbl : (string, int array) Hashtbl.t;
  declared_sizes : (string, int) Hashtbl.t;
  mutable fuel : int;
}

exception Returned of int option

let burn store =
  store.fuel <- store.fuel - 1;
  if store.fuel < 0 then errorf "out of fuel (non-terminating loop?)"

let read_scalar store name =
  match Hashtbl.find_opt store.scalar_tbl name with Some v -> v | None -> 0

let grow_array store name needed =
  let current =
    match Hashtbl.find_opt store.array_tbl name with
    | Some arr -> arr
    | None -> [||]
  in
  if Array.length current > needed then current
  else begin
    let bigger = Array.make (needed + 1) 0 in
    Array.blit current 0 bigger 0 (Array.length current);
    Hashtbl.replace store.array_tbl name bigger;
    bigger
  end

let check_bounds store name idx =
  if idx < 0 then errorf "negative index %d into array %s" idx name;
  match Hashtbl.find_opt store.declared_sizes name with
  | Some size when idx >= size ->
    errorf "index %d out of bounds for array %s[%d]" idx name size
  | Some _ | None -> ()

let read_array store name idx =
  check_bounds store name idx;
  match Hashtbl.find_opt store.array_tbl name with
  | Some arr when idx < Array.length arr -> arr.(idx)
  | Some _ | None -> 0

let write_array store name idx value =
  check_bounds store name idx;
  let arr = grow_array store name idx in
  arr.(idx) <- value

let rec eval store expr =
  match expr with
  | Ast.Int_lit n -> n
  | Ast.Var name -> read_scalar store name
  | Ast.Index (name, idx) -> read_array store name (eval store idx)
  | Ast.Binop (op, a, b) -> (
    (* && and || short-circuit as in C. *)
    match op with
    | Ast.Land -> if eval store a = 0 then 0 else if eval store b = 0 then 0 else 1
    | Ast.Lor -> if eval store a <> 0 then 1 else if eval store b <> 0 then 1 else 0
    | _ -> (
      let a = eval store a and b = eval store b in
      match Unroll.eval_const_expr
              (fun _ -> None)
              (Ast.Binop (op, Ast.Int_lit a, Ast.Int_lit b))
      with
      | Some v -> v
      | None -> errorf "runtime fault in %d %s %d" a (Ast.pp_binop op) b))
  | Ast.Unop (op, a) -> (
    let a = eval store a in
    match op with
    | Ast.Neg -> -a
    | Ast.Bnot -> lnot a
    | Ast.Lnot -> if a = 0 then 1 else 0)
  | Ast.Cond (c, a, b) -> if eval store c <> 0 then eval store a else eval store b
  | Ast.Call ("abs", [ a ]) -> abs (eval store a)
  | Ast.Call ("min", [ a; b ]) -> min (eval store a) (eval store b)
  | Ast.Call ("max", [ a; b ]) -> max (eval store a) (eval store b)
  | Ast.Call (name, _) -> errorf "call to unknown intrinsic %s" name

let rec exec store stmt =
  burn store;
  match stmt with
  | Ast.Decl (name, None, init) ->
    let v = match init with Some e -> eval store e | None -> 0 in
    Hashtbl.replace store.scalar_tbl name v
  | Ast.Decl (name, Some size, _) ->
    Hashtbl.replace store.declared_sizes name size;
    if not (Hashtbl.mem store.array_tbl name) then
      Hashtbl.replace store.array_tbl name (Array.make size 0)
  | Ast.Assign (Ast.Lvar name, e) ->
    Hashtbl.replace store.scalar_tbl name (eval store e)
  | Ast.Assign (Ast.Lindex (name, idx), e) ->
    let idx = eval store idx in
    let v = eval store e in
    write_array store name idx v
  | Ast.If (cond, then_body, else_body) ->
    exec_body store (if eval store cond <> 0 then then_body else else_body)
  | Ast.While (cond, body) ->
    while eval store cond <> 0 do
      burn store;
      exec_body store body
    done
  | Ast.Return value -> raise (Returned (Option.map (eval store) value))
  | Ast.Expr e -> ignore (eval store e)

and exec_body store body = List.iter (exec store) body

let snapshot store return_value =
  let scalars =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) store.scalar_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let arrays =
    Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) store.array_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { scalars; arrays; return_value }

let run ?(fuel = 1_000_000) ?(args = []) ?(scalar_init = [])
    ?(array_init = []) (f : Ast.func) =
  ignore (Sema.check_func f);
  let store =
    {
      scalar_tbl = Hashtbl.create 16;
      array_tbl = Hashtbl.create 16;
      declared_sizes = Hashtbl.create 16;
      fuel;
    }
  in
  List.iter (fun (name, v) -> Hashtbl.replace store.scalar_tbl name v) scalar_init;
  List.iter
    (fun (name, arr) -> Hashtbl.replace store.array_tbl name (Array.copy arr))
    array_init;
  (match
     List.length args <= List.length f.Ast.params
   with
  | true -> ()
  | false -> errorf "too many arguments for %s" f.Ast.name);
  List.iteri
    (fun i p ->
      let v = match List.nth_opt args i with Some v -> v | None -> 0 in
      Hashtbl.replace store.scalar_tbl p v)
    f.Ast.params;
  match exec_body store f.Ast.body with
  | () -> snapshot store None
  | exception Returned value -> snapshot store value

let run_main ?fuel ?array_init ?scalar_init program =
  let main = List.find (fun (f : Ast.func) -> f.Ast.name = "main") program in
  run ?fuel ?array_init ?scalar_init main

let equal_state a b =
  a.scalars = b.scalars
  && a.return_value = b.return_value
  && List.length a.arrays = List.length b.arrays
  && List.for_all2
       (fun (n1, arr1) (n2, arr2) -> String.equal n1 n2 && arr1 = arr2)
       a.arrays b.arrays

let pp_state fmt { scalars; arrays; return_value } =
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %d@," name v) scalars;
  List.iter
    (fun (name, arr) ->
      Format.fprintf fmt "%s = [%s]@," name
        (String.concat "; " (Array.to_list (Array.map string_of_int arr))))
    arrays;
  (match return_value with
  | Some v -> Format.fprintf fmt "return %d@," v
  | None -> ());
  Format.fprintf fmt "@]"
