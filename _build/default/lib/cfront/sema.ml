type kind = Scalar | Array of int option

type symbol = { name : string; kind : kind; implicit : bool }

type env = symbol list

exception Error of string

let errorf fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let intrinsic_arity = function
  | "abs" -> Some 1
  | "min" | "max" -> Some 2
  | _ -> None

type builder = (string, symbol) Hashtbl.t

let record (tbl : builder) name kind ~implicit =
  match Hashtbl.find_opt tbl name with
  | None -> Hashtbl.replace tbl name { name; kind; implicit }
  | Some existing -> (
    match (existing.kind, kind) with
    | Scalar, Scalar -> ()
    | Array _, Array None -> ()
    | Array None, Array (Some _) ->
      (* only implicit usage produces an unsized array entry *)
      Hashtbl.replace tbl name { name; kind; implicit }
    | Scalar, Array _ | Array _, Scalar ->
      errorf "symbol %s used both as scalar and as array" name
    | Array (Some a), Array (Some b) ->
      if a <> b then
        errorf "array %s declared with conflicting sizes %d and %d" name a b)

let rec check_expr tbl expr =
  match expr with
  | Ast.Int_lit _ -> ()
  | Ast.Var name -> record tbl name Scalar ~implicit:true
  | Ast.Index (name, idx) ->
    record tbl name (Array None) ~implicit:true;
    check_expr tbl idx
  | Ast.Binop (_, a, b) ->
    check_expr tbl a;
    check_expr tbl b
  | Ast.Unop (_, a) -> check_expr tbl a
  | Ast.Cond (c, a, b) ->
    check_expr tbl c;
    check_expr tbl a;
    check_expr tbl b
  | Ast.Call (name, args) -> (
    match intrinsic_arity name with
    | None -> errorf "call to unknown intrinsic %s" name
    | Some arity ->
      if List.length args <> arity then
        errorf "intrinsic %s expects %d argument(s), got %d" name arity
          (List.length args);
      List.iter (check_expr tbl) args)

let rec check_stmt tbl ~returns_value stmt =
  match stmt with
  | Ast.Decl (name, size, init) ->
    (match Hashtbl.find_opt tbl name with
    | Some sym when not sym.implicit -> errorf "duplicate declaration of %s" name
    | Some _ | None -> ());
    (match size with
    | Some n when n <= 0 -> errorf "array %s has non-positive size %d" name n
    | Some _ | None -> ());
    let kind = match size with Some n -> Array (Some n) | None -> Scalar in
    Hashtbl.replace tbl name { name; kind; implicit = false };
    Option.iter (check_expr tbl) init
  | Ast.Assign (Ast.Lvar name, e) ->
    record tbl name Scalar ~implicit:true;
    check_expr tbl e
  | Ast.Assign (Ast.Lindex (name, idx), e) ->
    record tbl name (Array None) ~implicit:true;
    check_expr tbl idx;
    check_expr tbl e
  | Ast.If (cond, then_body, else_body) ->
    check_expr tbl cond;
    List.iter (check_stmt tbl ~returns_value) then_body;
    List.iter (check_stmt tbl ~returns_value) else_body
  | Ast.While (cond, body) ->
    check_expr tbl cond;
    List.iter (check_stmt tbl ~returns_value) body
  | Ast.Return None ->
    if returns_value then errorf "missing return value in int function"
  | Ast.Return (Some e) ->
    if not returns_value then errorf "return with a value in void function";
    check_expr tbl e
  | Ast.Expr e -> check_expr tbl e

let check_func (f : Ast.func) =
  let tbl : builder = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem tbl p then errorf "duplicate parameter %s" p;
      Hashtbl.replace tbl p { name = p; kind = Scalar; implicit = false })
    f.params;
  List.iter (check_stmt tbl ~returns_value:f.returns_value) f.body;
  Hashtbl.fold (fun _ sym acc -> sym :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.name b.name)

let check_program program =
  let names = List.map (fun (f : Ast.func) -> f.name) program in
  let dup =
    Fpfa_util.Listx.uniq String.compare names |> List.length
    <> List.length names
  in
  if dup then errorf "duplicate function names in translation unit";
  List.map (fun (f : Ast.func) -> (f.name, check_func f)) program

let find env name = List.find_opt (fun s -> String.equal s.name name) env

let arrays env =
  List.filter (fun s -> match s.kind with Array _ -> true | Scalar -> false) env

let scalars env =
  List.filter (fun s -> match s.kind with Scalar -> true | Array _ -> false) env
