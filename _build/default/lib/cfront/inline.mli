(** Function inlining.

    The CDFG of the paper represents "C operators and function calls"
    (Section III); the mapping flow itself consumes one flat function.
    This pass closes the gap: every call to a user-defined function is
    expanded at the call site, so multi-function programs map like
    single-function ones.

    Inlining is purely syntactic and C-faithful:
    - parameters become assignments of the (hoisted) argument values;
    - symbols {e declared} inside the callee (parameters and [int]/array
      declarations) are renamed to fresh names per call site;
    - undeclared symbols keep their names — they are the program's shared
      globals, exactly as in the rest of the toolchain;
    - [return e] becomes an assignment to a fresh result variable; a
      [return] in the middle of the callee is rejected (same restriction
      as the CDFG builder places on [main]).

    Calls may appear anywhere in an expression; each statement's calls are
    hoisted in evaluation order before the statement. Recursion (direct or
    mutual) is rejected. *)

exception Error of string

val program : Ast.program -> Ast.program
(** Expands every call to a defined function, in every function body.
    Intrinsic calls ([abs]/[min]/[max]) are untouched. The result contains
    the same function definitions with call-free bodies.
    @raise Error on recursion, arity mismatch, use of a [void] function in
    an expression, or a non-tail [return] in a callee. *)

val entry : ?func:string -> Ast.program -> Ast.func
(** [program] then extraction of the (now call-free) entry function
    (default ["main"]). @raise Not_found if absent. *)
