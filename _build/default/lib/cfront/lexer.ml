exception Error of string * Token.pos

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let pos st : Token.pos = { line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let keyword = function
  | "int" -> Some Token.Kw_int
  | "void" -> Some Token.Kw_void
  | "if" -> Some Token.Kw_if
  | "else" -> Some Token.Kw_else
  | "while" -> Some Token.Kw_while
  | "for" -> Some Token.Kw_for
  | "return" -> Some Token.Kw_return
  | _ -> None

(* Skips whitespace, //, /* */ comments and # preprocessor lines. *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '#' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec to_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        to_close ()
      | None, _ -> raise (Error ("unterminated comment", start))
    in
    to_close ();
    skip_trivia st
  | Some _ | None -> ()

let lex_number st =
  let start = st.off in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  Token.Int_lit (int_of_string text)

let lex_ident st =
  let start = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.off - start) in
  match keyword text with Some kw -> kw | None -> Token.Ident text

(* Operators: longest match first. *)
let lex_operator st p =
  let two tok =
    advance st;
    advance st;
    tok
  in
  let one tok =
    advance st;
    tok
  in
  match (peek st, peek2 st) with
  | Some '<', Some '<' -> two Token.Shl
  | Some '>', Some '>' -> two Token.Shr
  | Some '<', Some '=' -> two Token.Le
  | Some '>', Some '=' -> two Token.Ge
  | Some '=', Some '=' -> two Token.Eq_eq
  | Some '!', Some '=' -> two Token.Bang_eq
  | Some '&', Some '&' -> two Token.Amp_amp
  | Some '|', Some '|' -> two Token.Pipe_pipe
  | Some '+', Some '+' -> two Token.Plus_plus
  | Some '-', Some '-' -> two Token.Minus_minus
  | Some '+', Some '=' -> two Token.Plus_assign
  | Some '-', Some '=' -> two Token.Minus_assign
  | Some '*', Some '=' -> two Token.Star_assign
  | Some '/', Some '=' -> two Token.Slash_assign
  | Some '%', Some '=' -> two Token.Percent_assign
  | Some '<', _ -> one Token.Lt
  | Some '>', _ -> one Token.Gt
  | Some '=', _ -> one Token.Assign
  | Some '!', _ -> one Token.Bang
  | Some '&', _ -> one Token.Amp
  | Some '|', _ -> one Token.Pipe
  | Some '^', _ -> one Token.Caret
  | Some '~', _ -> one Token.Tilde
  | Some '+', _ -> one Token.Plus
  | Some '-', _ -> one Token.Minus
  | Some '*', _ -> one Token.Star
  | Some '/', _ -> one Token.Slash
  | Some '%', _ -> one Token.Percent
  | Some '(', _ -> one Token.Lparen
  | Some ')', _ -> one Token.Rparen
  | Some '[', _ -> one Token.Lbracket
  | Some ']', _ -> one Token.Rbracket
  | Some '{', _ -> one Token.Lbrace
  | Some '}', _ -> one Token.Rbrace
  | Some '?', _ -> one Token.Question
  | Some ':', _ -> one Token.Colon
  | Some ',', _ -> one Token.Comma
  | Some ';', _ -> one Token.Semi
  | Some c, _ -> raise (Error (Printf.sprintf "unexpected character %C" c, p))
  | None, _ -> Token.Eof

let tokenize src =
  let st = { src; off = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_trivia st;
    let p = pos st in
    match peek st with
    | None -> List.rev ((Token.Eof, p) :: acc)
    | Some c when is_digit c -> loop ((lex_number st, p) :: acc)
    | Some c when is_ident_start c -> loop ((lex_ident st, p) :: acc)
    | Some _ -> loop ((lex_operator st p, p) :: acc)
  in
  loop []
