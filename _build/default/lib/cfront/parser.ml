exception Error of string * Token.pos

type state = { mutable tokens : (Token.t * Token.pos) list }

let peek st =
  match st.tokens with
  | (tok, p) :: _ -> (tok, p)
  | [] -> (Token.Eof, { Token.line = 0; col = 0 })

let advance st =
  match st.tokens with (_ : Token.t * Token.pos) :: rest -> st.tokens <- rest | [] -> ()

let fail st msg =
  let tok, p = peek st in
  raise (Error (Printf.sprintf "%s (found %S)" msg (Token.to_string tok), p))

let expect st tok =
  let found, _ = peek st in
  if Token.equal found tok then advance st
  else fail st (Printf.sprintf "expected %S" (Token.to_string tok))

let expect_ident st =
  match peek st with
  | Token.Ident name, _ ->
    advance st;
    name
  | _ -> fail st "expected identifier"

(* Expression parsing: precedence climbing over the C binary operators. *)

let binop_of_token = function
  | Token.Pipe_pipe -> Some (Ast.Lor, 1)
  | Token.Amp_amp -> Some (Ast.Land, 2)
  | Token.Pipe -> Some (Ast.Bor, 3)
  | Token.Caret -> Some (Ast.Bxor, 4)
  | Token.Amp -> Some (Ast.Band, 5)
  | Token.Eq_eq -> Some (Ast.Eq, 6)
  | Token.Bang_eq -> Some (Ast.Ne, 6)
  | Token.Lt -> Some (Ast.Lt, 7)
  | Token.Le -> Some (Ast.Le, 7)
  | Token.Gt -> Some (Ast.Gt, 7)
  | Token.Ge -> Some (Ast.Ge, 7)
  | Token.Shl -> Some (Ast.Shl, 8)
  | Token.Shr -> Some (Ast.Shr, 8)
  | Token.Plus -> Some (Ast.Add, 9)
  | Token.Minus -> Some (Ast.Sub, 9)
  | Token.Star -> Some (Ast.Mul, 10)
  | Token.Slash -> Some (Ast.Div, 10)
  | Token.Percent -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expression st = parse_conditional st

and parse_conditional st =
  let cond = parse_binary st 1 in
  match peek st with
  | Token.Question, _ ->
    advance st;
    let if_true = parse_expression st in
    expect st Token.Colon;
    let if_false = parse_conditional st in
    Ast.Cond (cond, if_true, if_false)
  | _ -> cond

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (fst (peek st)) with
    | Some (op, prec) when prec >= min_prec ->
      advance st;
      let rhs = parse_binary st (prec + 1) in
      loop (Ast.Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Token.Minus, _ ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Token.Tilde, _ ->
    advance st;
    Ast.Unop (Ast.Bnot, parse_unary st)
  | Token.Bang, _ ->
    advance st;
    Ast.Unop (Ast.Lnot, parse_unary st)
  | Token.Plus, _ ->
    advance st;
    parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Token.Int_lit n, _ ->
    advance st;
    Ast.Int_lit n
  | Token.Lparen, _ ->
    advance st;
    let e = parse_expression st in
    expect st Token.Rparen;
    e
  | Token.Ident name, _ -> (
    advance st;
    match peek st with
    | Token.Lbracket, _ ->
      advance st;
      let idx = parse_expression st in
      expect st Token.Rbracket;
      Ast.Index (name, idx)
    | Token.Lparen, _ ->
      advance st;
      let args = parse_args st in
      expect st Token.Rparen;
      Ast.Call (name, args)
    | _ -> Ast.Var name)
  | _ -> fail st "expected expression"

and parse_args st =
  match peek st with
  | Token.Rparen, _ -> []
  | _ ->
    let first = parse_expression st in
    let rec more acc =
      match peek st with
      | Token.Comma, _ ->
        advance st;
        more (parse_expression st :: acc)
      | _ -> List.rev acc
    in
    more [ first ]

(* Statements. [for] is desugared to [while]; compound assignments and
   increments are desugared to plain assignments. *)

let lvalue_expr = function
  | Ast.Lvar name -> Ast.Var name
  | Ast.Lindex (name, idx) -> Ast.Index (name, idx)

let parse_lvalue st =
  let name = expect_ident st in
  match peek st with
  | Token.Lbracket, _ ->
    advance st;
    let idx = parse_expression st in
    expect st Token.Rbracket;
    Ast.Lindex (name, idx)
  | _ -> Ast.Lvar name

(* A "simple statement" is an assignment-or-expression without the trailing
   ';' — it is what appears in for-headers. *)
let parse_simple st =
  match peek st with
  | Token.Ident _, _ -> (
    let saved = st.tokens in
    let lv = parse_lvalue st in
    let compound op =
      advance st;
      let rhs = parse_expression st in
      Ast.Assign (lv, Ast.Binop (op, lvalue_expr lv, rhs))
    in
    match peek st with
    | Token.Assign, _ ->
      advance st;
      let rhs = parse_expression st in
      Ast.Assign (lv, rhs)
    | Token.Plus_assign, _ -> compound Ast.Add
    | Token.Minus_assign, _ -> compound Ast.Sub
    | Token.Star_assign, _ -> compound Ast.Mul
    | Token.Slash_assign, _ -> compound Ast.Div
    | Token.Percent_assign, _ -> compound Ast.Mod
    | Token.Plus_plus, _ ->
      advance st;
      Ast.Assign (lv, Ast.Binop (Ast.Add, lvalue_expr lv, Ast.Int_lit 1))
    | Token.Minus_minus, _ ->
      advance st;
      Ast.Assign (lv, Ast.Binop (Ast.Sub, lvalue_expr lv, Ast.Int_lit 1))
    | _ ->
      st.tokens <- saved;
      Ast.Expr (parse_expression st))
  | _ -> Ast.Expr (parse_expression st)

let rec parse_statement st =
  match peek st with
  | Token.Kw_int, _ ->
    advance st;
    let name = expect_ident st in
    let decl =
      match peek st with
      | Token.Lbracket, _ -> (
        advance st;
        match peek st with
        | Token.Int_lit size, _ ->
          advance st;
          expect st Token.Rbracket;
          Ast.Decl (name, Some size, None)
        | _ -> fail st "array size must be an integer literal")
      | Token.Assign, _ ->
        advance st;
        let init = parse_expression st in
        Ast.Decl (name, None, Some init)
      | _ -> Ast.Decl (name, None, None)
    in
    expect st Token.Semi;
    [ decl ]
  | Token.Kw_if, _ ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expression st in
    expect st Token.Rparen;
    let then_body = parse_block_or_single st in
    let else_body =
      match peek st with
      | Token.Kw_else, _ ->
        advance st;
        parse_block_or_single st
      | _ -> []
    in
    [ Ast.If (cond, then_body, else_body) ]
  | Token.Kw_while, _ ->
    advance st;
    expect st Token.Lparen;
    let cond = parse_expression st in
    expect st Token.Rparen;
    let body = parse_block_or_single st in
    [ Ast.While (cond, body) ]
  | Token.Kw_for, _ ->
    advance st;
    expect st Token.Lparen;
    let init =
      match peek st with
      | Token.Semi, _ -> []
      | _ -> [ parse_simple st ]
    in
    expect st Token.Semi;
    let cond =
      match peek st with
      | Token.Semi, _ -> Ast.Int_lit 1
      | _ -> parse_expression st
    in
    expect st Token.Semi;
    let step =
      match peek st with
      | Token.Rparen, _ -> []
      | _ -> [ parse_simple st ]
    in
    expect st Token.Rparen;
    let body = parse_block_or_single st in
    init @ [ Ast.While (cond, body @ step) ]
  | Token.Kw_return, _ ->
    advance st;
    let value =
      match peek st with
      | Token.Semi, _ -> None
      | _ -> Some (parse_expression st)
    in
    expect st Token.Semi;
    [ Ast.Return value ]
  | Token.Semi, _ ->
    advance st;
    []
  | Token.Lbrace, _ -> parse_block st
  | _ ->
    let stmt = parse_simple st in
    expect st Token.Semi;
    [ stmt ]

and parse_block st =
  expect st Token.Lbrace;
  let rec loop acc =
    match peek st with
    | Token.Rbrace, _ ->
      advance st;
      List.rev acc
    | Token.Eof, _ -> fail st "unterminated block"
    | _ ->
      let stmts = parse_statement st in
      loop (List.rev_append stmts acc)
  in
  loop []

and parse_block_or_single st =
  match peek st with
  | Token.Lbrace, _ -> parse_block st
  | _ -> parse_statement st

let parse_func st =
  let returns_value =
    match peek st with
    | Token.Kw_void, _ ->
      advance st;
      false
    | Token.Kw_int, _ ->
      advance st;
      true
    | _ -> fail st "expected function return type (int or void)"
  in
  let name = expect_ident st in
  expect st Token.Lparen;
  let params =
    match peek st with
    | Token.Rparen, _ -> []
    | _ ->
      let param () =
        expect st Token.Kw_int;
        expect_ident st
      in
      let first = param () in
      let rec more acc =
        match peek st with
        | Token.Comma, _ ->
          advance st;
          more (param () :: acc)
        | _ -> List.rev acc
      in
      more [ first ]
  in
  expect st Token.Rparen;
  let body = parse_block st in
  { Ast.name; params; body; returns_value }

let parse_program source =
  let st = { tokens = Lexer.tokenize source } in
  let rec loop acc =
    match peek st with
    | Token.Eof, _ -> List.rev acc
    | _ -> loop (parse_func st :: acc)
  in
  let program = loop [] in
  if program = [] then fail st "empty translation unit" else program

let parse_expr source =
  let st = { tokens = Lexer.tokenize source } in
  let e = parse_expression st in
  expect st Token.Eof;
  e
