(** Semantic analysis of the C subset.

    Builds the symbol table the CDFG builder needs and rejects programs the
    flow cannot map. Variables used without a declaration are accepted as
    implicit symbols (the paper's FIR example uses [sum], [i], [a] and [c]
    undeclared): a name first used with subscript syntax becomes an implicit
    array (its contents are program inputs), otherwise an implicit scalar. *)

type kind =
  | Scalar
  | Array of int option
      (** Declared arrays carry their size; implicit arrays have none. *)

type symbol = {
  name : string;
  kind : kind;
  implicit : bool;  (** true when never declared (paper-style inputs) *)
}

type env = symbol list
(** Symbols sorted by name. *)

exception Error of string

val check_func : Ast.func -> env
(** Analyses one function.
    @raise Error on inconsistent usage (scalar indexed, array read bare,
    duplicate declaration, unknown intrinsic, wrong intrinsic arity,
    non-positive array size, return value mismatch). *)

val check_program : Ast.program -> (string * env) list
(** [check_func] for each function; functions must have distinct names. *)

val find : env -> string -> symbol option

val arrays : env -> symbol list
(** All array symbols. *)

val scalars : env -> symbol list
