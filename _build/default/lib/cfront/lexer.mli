(** Hand-written lexer for the C subset. *)

exception Error of string * Token.pos
(** Raised on an unrecognised character or malformed literal. *)

val tokenize : string -> (Token.t * Token.pos) list
(** [tokenize source] is the token stream of [source], terminated by
    {!Token.Eof}. Line (`//`) and block comments as well as preprocessor
    lines (`#...`) are skipped.

    @raise Error on lexical errors. *)
