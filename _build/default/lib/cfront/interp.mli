(** Reference interpreter for the C subset.

    This is the golden semantics the whole toolchain is checked against: the
    CDFG evaluator and the FPFA tile simulator must produce the same final
    state as this interpreter on the same inputs.

    Memory model: every scalar and every array is a named region. Regions
    start from the supplied initial contents; any location never supplied
    and never written reads as 0. Implicit symbols (used but not declared)
    are program inputs and are usually seeded through [initial_state]. *)

type state = {
  scalars : (string * int) list;  (** sorted by name *)
  arrays : (string * int array) list;  (** sorted by name *)
  return_value : int option;
}

exception Runtime_error of string
(** Array index out of bounds (negative, or past a declared bound) or fuel
    exhaustion. Division and shifts are total ([x/0 = x%0 = 0], out-of-range
    shift amounts yield 0) so that the speculative CDFG evaluation and the
    tile simulator agree with this interpreter on every input. *)

val run :
  ?fuel:int ->
  ?args:int list ->
  ?scalar_init:(string * int) list ->
  ?array_init:(string * int array) list ->
  Ast.func ->
  state
(** Executes one function. [fuel] (default 1_000_000) bounds the number of
    statements executed. [args] bind positional parameters. Implicit arrays
    not given in [array_init] are sized on demand (largest index touched).

    @raise Runtime_error on runtime faults.
    @raise Sema.Error when the function does not pass semantic analysis. *)

val run_main : ?fuel:int -> ?array_init:(string * int array) list ->
  ?scalar_init:(string * int) list -> Ast.program -> state
(** Runs the function called ["main"].
    @raise Not_found when the program has no [main]. *)

val equal_state : state -> state -> bool

val pp_state : Format.formatter -> state -> unit
