type t =
  | Int_lit of int
  | Ident of string
  | Kw_int
  | Kw_void
  | Kw_if
  | Kw_else
  | Kw_while
  | Kw_for
  | Kw_return
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Lbrace
  | Rbrace
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Lt
  | Le
  | Gt
  | Ge
  | Eq_eq
  | Bang_eq
  | Amp_amp
  | Pipe_pipe
  | Shl
  | Shr
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Plus_plus
  | Minus_minus
  | Question
  | Colon
  | Comma
  | Semi
  | Eof

type pos = { line : int; col : int }

let to_string = function
  | Int_lit n -> string_of_int n
  | Ident s -> s
  | Kw_int -> "int"
  | Kw_void -> "void"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_while -> "while"
  | Kw_for -> "for"
  | Kw_return -> "return"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Amp_amp -> "&&"
  | Pipe_pipe -> "||"
  | Shl -> "<<"
  | Shr -> ">>"
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Percent_assign -> "%="
  | Plus_plus -> "++"
  | Minus_minus -> "--"
  | Question -> "?"
  | Colon -> ":"
  | Comma -> ","
  | Semi -> ";"
  | Eof -> "<eof>"

let equal a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> x = y
  | Ident x, Ident y -> String.equal x y
  | x, y -> x = y
