(** Abstract syntax of the C subset.

    The subset is what the FPFA mapping flow consumes: [int] scalars and
    one-dimensional arrays, assignments, [if]/[else], [while]/[for] loops,
    the full C integer expression grammar and calls to a few pure intrinsics
    ([abs], [min], [max]). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type unop = Neg | Bnot | Lnot

type expr =
  | Int_lit of int
  | Var of string
  | Index of string * expr  (** [a[i]] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | Call of string * expr list  (** intrinsic call *)

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Decl of string * int option * expr option
      (** [Decl (x, None, init)] declares a scalar, [Decl (a, Some n, _)] an
          array of [n] elements (arrays take no initialiser). *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr

type func = {
  name : string;
  params : string list;  (** scalar value parameters *)
  body : stmt list;
  returns_value : bool;
}

type program = func list

val intrinsics : string list
(** Names callable as pure intrinsics: ["abs"; "min"; "max"]. *)

val pp_binop : binop -> string
val pp_unop : unop -> string

val pp_expr : Format.formatter -> expr -> unit
(** Prints valid C, fully parenthesised below the top level. *)

val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit

val program_to_string : program -> string
(** Round-trippable C text of the program. *)

val equal_expr : expr -> expr -> bool
val equal_stmt : stmt -> stmt -> bool
val equal_program : program -> program -> bool

val expr_size : expr -> int
(** Number of AST nodes in an expression. *)

val stmt_count : stmt list -> int
(** Number of statements, counting nested bodies. *)
