type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type unop = Neg | Bnot | Lnot

type expr =
  | Int_lit of int
  | Var of string
  | Index of string * expr
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Cond of expr * expr * expr
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

type stmt =
  | Decl of string * int option * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Expr of expr

type func = {
  name : string;
  params : string list;
  body : stmt list;
  returns_value : bool;
}

type program = func list

let intrinsics = [ "abs"; "min"; "max" ]

let pp_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Land -> "&&"
  | Lor -> "||"

let pp_unop = function Neg -> "-" | Bnot -> "~" | Lnot -> "!"

(* Negative literals are printed parenthesised so that "x - (-1)" does not
   lex back as "x - -1" followed by a parse of "--". *)
let rec pp_expr fmt expr =
  match expr with
  | Int_lit n -> if n < 0 then Format.fprintf fmt "(%d)" n else Format.fprintf fmt "%d" n
  | Var name -> Format.pp_print_string fmt name
  | Index (name, idx) -> Format.fprintf fmt "%s[%a]" name pp_expr idx
  | Binop (op, a, b) ->
    Format.fprintf fmt "(%a %s %a)" pp_expr a (pp_binop op) pp_expr b
  | Unop (op, a) -> Format.fprintf fmt "(%s%a)" (pp_unop op) pp_expr a
  | Cond (c, a, b) ->
    Format.fprintf fmt "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Call (name, args) ->
    Format.fprintf fmt "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_expr)
      args

let pp_lvalue fmt = function
  | Lvar name -> Format.pp_print_string fmt name
  | Lindex (name, idx) -> Format.fprintf fmt "%s[%a]" name pp_expr idx

let rec pp_stmt fmt stmt =
  match stmt with
  | Decl (name, None, None) -> Format.fprintf fmt "int %s;" name
  | Decl (name, None, Some init) ->
    Format.fprintf fmt "int %s = %a;" name pp_expr init
  | Decl (name, Some size, _) -> Format.fprintf fmt "int %s[%d];" name size
  | Assign (lv, e) -> Format.fprintf fmt "%a = %a;" pp_lvalue lv pp_expr e
  | If (cond, then_body, []) ->
    Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,}" pp_expr cond pp_body then_body
  | If (cond, then_body, else_body) ->
    Format.fprintf fmt "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" pp_expr
      cond pp_body then_body pp_body else_body
  | While (cond, body) ->
    Format.fprintf fmt "@[<v 2>while (%a) {%a@]@,}" pp_expr cond pp_body body
  | Return None -> Format.pp_print_string fmt "return;"
  | Return (Some e) -> Format.fprintf fmt "return %a;" pp_expr e
  | Expr e -> Format.fprintf fmt "%a;" pp_expr e

and pp_body fmt body =
  List.iter (fun stmt -> Format.fprintf fmt "@,%a" pp_stmt stmt) body

let pp_func fmt { name; params; body; returns_value } =
  let ret = if returns_value then "int" else "void" in
  let params_text =
    match params with
    | [] -> ""
    | _ -> String.concat ", " (List.map (fun p -> "int " ^ p) params)
  in
  Format.fprintf fmt "@[<v 2>%s %s(%s) {%a@]@,}" ret name params_text pp_body
    body

let pp_program fmt funcs =
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i f ->
      if i > 0 then Format.pp_print_cut fmt ();
      pp_func fmt f)
    funcs;
  Format.pp_close_box fmt ()

let program_to_string program = Format.asprintf "%a@." pp_program program

let rec equal_expr a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> x = y
  | Var x, Var y -> String.equal x y
  | Index (x, i), Index (y, j) -> String.equal x y && equal_expr i j
  | Binop (op1, a1, b1), Binop (op2, a2, b2) ->
    op1 = op2 && equal_expr a1 a2 && equal_expr b1 b2
  | Unop (op1, a1), Unop (op2, a2) -> op1 = op2 && equal_expr a1 a2
  | Cond (c1, a1, b1), Cond (c2, a2, b2) ->
    equal_expr c1 c2 && equal_expr a1 a2 && equal_expr b1 b2
  | Call (f, args1), Call (g, args2) ->
    String.equal f g
    && List.length args1 = List.length args2
    && List.for_all2 equal_expr args1 args2
  | ( ( Int_lit _ | Var _ | Index _ | Binop _ | Unop _ | Cond _ | Call _ ),
      ( Int_lit _ | Var _ | Index _ | Binop _ | Unop _ | Cond _ | Call _ ) ) ->
    false

let equal_lvalue a b =
  match (a, b) with
  | Lvar x, Lvar y -> String.equal x y
  | Lindex (x, i), Lindex (y, j) -> String.equal x y && equal_expr i j
  | (Lvar _ | Lindex _), (Lvar _ | Lindex _) -> false

let rec equal_stmt a b =
  match (a, b) with
  | Decl (x, sx, ix), Decl (y, sy, iy) ->
    String.equal x y && sx = sy
    && (match (ix, iy) with
       | None, None -> true
       | Some e1, Some e2 -> equal_expr e1 e2
       | None, Some _ | Some _, None -> false)
  | Assign (lv1, e1), Assign (lv2, e2) -> equal_lvalue lv1 lv2 && equal_expr e1 e2
  | If (c1, t1, e1), If (c2, t2, e2) ->
    equal_expr c1 c2 && equal_body t1 t2 && equal_body e1 e2
  | While (c1, b1), While (c2, b2) -> equal_expr c1 c2 && equal_body b1 b2
  | Return None, Return None -> true
  | Return (Some e1), Return (Some e2) -> equal_expr e1 e2
  | Expr e1, Expr e2 -> equal_expr e1 e2
  | ( (Decl _ | Assign _ | If _ | While _ | Return _ | Expr _),
      (Decl _ | Assign _ | If _ | While _ | Return _ | Expr _) ) ->
    false

and equal_body b1 b2 =
  List.length b1 = List.length b2 && List.for_all2 equal_stmt b1 b2

let equal_func f g =
  String.equal f.name g.name
  && f.params = g.params
  && f.returns_value = g.returns_value
  && equal_body f.body g.body

let equal_program p q =
  List.length p = List.length q && List.for_all2 equal_func p q

let rec expr_size = function
  | Int_lit _ | Var _ -> 1
  | Index (_, idx) -> 1 + expr_size idx
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b
  | Unop (_, a) -> 1 + expr_size a
  | Cond (c, a, b) -> 1 + expr_size c + expr_size a + expr_size b
  | Call (_, args) -> 1 + Fpfa_util.Listx.sum (List.map expr_size args)

let rec stmt_count body =
  Fpfa_util.Listx.sum
    (List.map
       (function
         | Decl _ | Assign _ | Return _ | Expr _ -> 1
         | If (_, t, e) -> 1 + stmt_count t + stmt_count e
         | While (_, b) -> 1 + stmt_count b)
       body)
