exception Error of string

let errorf fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

module Smap = Map.Make (String)
module Sset = Set.Make (String)

(* ---------------- call-graph analysis ---------------- *)

let rec calls_in_expr acc (expr : Ast.expr) =
  match expr with
  | Ast.Int_lit _ | Ast.Var _ -> acc
  | Ast.Index (_, idx) -> calls_in_expr acc idx
  | Ast.Binop (_, a, b) -> calls_in_expr (calls_in_expr acc a) b
  | Ast.Unop (_, a) -> calls_in_expr acc a
  | Ast.Cond (c, a, b) ->
    calls_in_expr (calls_in_expr (calls_in_expr acc c) a) b
  | Ast.Call (name, args) ->
    List.fold_left calls_in_expr (Sset.add name acc) args

let rec calls_in_stmt acc (stmt : Ast.stmt) =
  match stmt with
  | Ast.Decl (_, _, Some init) -> calls_in_expr acc init
  | Ast.Decl (_, _, None) -> acc
  | Ast.Assign (Ast.Lvar _, e) -> calls_in_expr acc e
  | Ast.Assign (Ast.Lindex (_, idx), e) ->
    calls_in_expr (calls_in_expr acc idx) e
  | Ast.If (c, t, f) ->
    calls_in_expr (List.fold_left calls_in_stmt (List.fold_left calls_in_stmt acc t) f) c
  | Ast.While (c, body) ->
    calls_in_expr (List.fold_left calls_in_stmt acc body) c
  | Ast.Return (Some e) | Ast.Expr e -> calls_in_expr acc e
  | Ast.Return None -> acc

let calls_of (f : Ast.func) =
  List.fold_left calls_in_stmt Sset.empty f.Ast.body

(* Functions ordered so that callees precede callers; recursion is a
   cycle and rejected. *)
let topological_functions (program : Ast.program) =
  let defined =
    List.fold_left
      (fun m (f : Ast.func) -> Smap.add f.Ast.name f m)
      Smap.empty program
  in
  let visiting = Hashtbl.create 8 in
  let done_tbl = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit name =
    if Hashtbl.mem done_tbl name then ()
    else if Hashtbl.mem visiting name then
      errorf "recursive call involving %s cannot be inlined" name
    else
      match Smap.find_opt name defined with
      | None -> () (* intrinsic *)
      | Some f ->
        Hashtbl.replace visiting name ();
        Sset.iter visit (calls_of f);
        Hashtbl.remove visiting name;
        Hashtbl.replace done_tbl name ();
        order := f :: !order
  in
  List.iter (fun (f : Ast.func) -> visit f.Ast.name) program;
  (defined, List.rev !order)

(* ---------------- renaming of callee-local symbols ---------------- *)

let rec declared_in_body acc body =
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Ast.Decl (name, _, _) -> Sset.add name acc
      | Ast.If (_, t, f) -> declared_in_body (declared_in_body acc t) f
      | Ast.While (_, b) -> declared_in_body acc b
      | Ast.Assign _ | Ast.Return _ | Ast.Expr _ -> acc)
    acc body

let rename_symbol locals prefix name =
  if Sset.mem name locals then prefix ^ name else name

let rec rename_expr locals prefix (expr : Ast.expr) =
  let rn = rename_expr locals prefix in
  match expr with
  | Ast.Int_lit _ -> expr
  | Ast.Var name -> Ast.Var (rename_symbol locals prefix name)
  | Ast.Index (name, idx) -> Ast.Index (rename_symbol locals prefix name, rn idx)
  | Ast.Binop (op, a, b) -> Ast.Binop (op, rn a, rn b)
  | Ast.Unop (op, a) -> Ast.Unop (op, rn a)
  | Ast.Cond (c, a, b) -> Ast.Cond (rn c, rn a, rn b)
  | Ast.Call (name, args) -> Ast.Call (name, List.map rn args)

let rec rename_stmt locals prefix (stmt : Ast.stmt) =
  let rn_e = rename_expr locals prefix in
  let rn_b = List.map (rename_stmt locals prefix) in
  match stmt with
  | Ast.Decl (name, size, init) ->
    Ast.Decl (rename_symbol locals prefix name, size, Option.map rn_e init)
  | Ast.Assign (Ast.Lvar name, e) ->
    Ast.Assign (Ast.Lvar (rename_symbol locals prefix name), rn_e e)
  | Ast.Assign (Ast.Lindex (name, idx), e) ->
    Ast.Assign (Ast.Lindex (rename_symbol locals prefix name, rn_e idx), rn_e e)
  | Ast.If (c, t, f) -> Ast.If (rn_e c, rn_b t, rn_b f)
  | Ast.While (c, b) -> Ast.While (rn_e c, rn_b b)
  | Ast.Return e -> Ast.Return (Option.map rn_e e)
  | Ast.Expr e -> Ast.Expr (rn_e e)

(* ---------------- call expansion ---------------- *)

type ctx = {
  defined : Ast.func Smap.t;
  inlined : (string, Ast.func) Hashtbl.t;  (* already call-free bodies *)
  mutable counter : int;
}

(* Splits a call-free callee body into statements plus its result
   expression. Only a single trailing return is accepted. *)
let split_result fname body =
  let rec check_no_return stmts =
    List.iter
      (fun stmt ->
        match stmt with
        | Ast.Return _ ->
          errorf "%s: only a single trailing return can be inlined" fname
        | Ast.If (_, t, f) ->
          check_no_return t;
          check_no_return f
        | Ast.While (_, b) -> check_no_return b
        | Ast.Decl _ | Ast.Assign _ | Ast.Expr _ -> ())
      stmts
  in
  match List.rev body with
  | Ast.Return value :: rev_prefix ->
    let prefix = List.rev rev_prefix in
    check_no_return prefix;
    (prefix, value)
  | body_rev ->
    let body = List.rev body_rev in
    check_no_return body;
    (body, None)

(* Expands one call: evaluates the (already expanded) arguments into the
   callee's renamed parameters, splices the renamed body, and yields the
   expression carrying the result. *)
let expand_call ctx fname args =
  let f =
    match Hashtbl.find_opt ctx.inlined fname with
    | Some f -> f
    | None -> errorf "internal: callee %s not processed" fname
  in
  if List.length args <> List.length f.Ast.params then
    errorf "%s expects %d argument(s), got %d" fname
      (List.length f.Ast.params) (List.length args);
  let prefix = Printf.sprintf "__%s%d_" fname ctx.counter in
  ctx.counter <- ctx.counter + 1;
  let locals =
    declared_in_body
      (List.fold_left (fun s p -> Sset.add p s) Sset.empty f.Ast.params)
      f.Ast.body
  in
  let body = List.map (rename_stmt locals prefix) f.Ast.body in
  let stmts, result = split_result fname body in
  let param_binds =
    List.map2
      (fun p arg -> Ast.Assign (Ast.Lvar (rename_symbol locals prefix p), arg))
      f.Ast.params args
  in
  (param_binds @ stmts, result)

(* Expression walk: every user call is hoisted, in evaluation order, into
   the returned prelude; the expression is rebuilt call-free. *)
let rec expand_expr ctx (expr : Ast.expr) =
  match expr with
  | Ast.Int_lit _ | Ast.Var _ -> ([], expr)
  | Ast.Index (name, idx) ->
    let pre, idx = expand_expr ctx idx in
    (pre, Ast.Index (name, idx))
  | Ast.Binop (op, a, b) ->
    let pre_a, a = expand_expr ctx a in
    let pre_b, b = expand_expr ctx b in
    (pre_a @ pre_b, Ast.Binop (op, a, b))
  | Ast.Unop (op, a) ->
    let pre, a = expand_expr ctx a in
    (pre, Ast.Unop (op, a))
  | Ast.Cond (c, a, b) ->
    let pre_c, c = expand_expr ctx c in
    let pre_a, a = expand_expr ctx a in
    let pre_b, b = expand_expr ctx b in
    (pre_c @ pre_a @ pre_b, Ast.Cond (c, a, b))
  | Ast.Call (name, args) when Smap.mem name ctx.defined ->
    let pre_args, args =
      List.fold_left
        (fun (pre, args) arg ->
          let pre_arg, arg = expand_expr ctx arg in
          (pre @ pre_arg, args @ [ arg ]))
        ([], []) args
    in
    let body, result = expand_call ctx name args in
    let result_var = Printf.sprintf "__%s%d_ret" name ctx.counter in
    ctx.counter <- ctx.counter + 1;
    (match result with
    | Some value ->
      ( pre_args @ body @ [ Ast.Assign (Ast.Lvar result_var, value) ],
        Ast.Var result_var )
    | None ->
      errorf "void function %s used in an expression" name)
  | Ast.Call (name, args) ->
    (* intrinsic *)
    let pre_args, args =
      List.fold_left
        (fun (pre, args) arg ->
          let pre_arg, arg = expand_expr ctx arg in
          (pre @ pre_arg, args @ [ arg ]))
        ([], []) args
    in
    (pre_args, Ast.Call (name, args))

let rec expand_stmt ctx (stmt : Ast.stmt) =
  match stmt with
  | Ast.Decl (name, size, Some init) ->
    let pre, init = expand_expr ctx init in
    pre @ [ Ast.Decl (name, size, Some init) ]
  | Ast.Decl (_, _, None) -> [ stmt ]
  | Ast.Assign (Ast.Lvar name, e) ->
    let pre, e = expand_expr ctx e in
    pre @ [ Ast.Assign (Ast.Lvar name, e) ]
  | Ast.Assign (Ast.Lindex (name, idx), e) ->
    let pre_i, idx = expand_expr ctx idx in
    let pre_e, e = expand_expr ctx e in
    pre_i @ pre_e @ [ Ast.Assign (Ast.Lindex (name, idx), e) ]
  | Ast.If (c, t, f) ->
    let pre, c = expand_expr ctx c in
    pre @ [ Ast.If (c, expand_body ctx t, expand_body ctx f) ]
  | Ast.While (c, body) ->
    if not (Sset.is_empty (Sset.inter (calls_in_expr Sset.empty c)
              (Sset.of_list (List.map fst (Smap.bindings ctx.defined)))))
    then
      errorf "a call in a loop condition cannot be inlined";
    [ Ast.While (c, expand_body ctx body) ]
  | Ast.Return (Some e) ->
    let pre, e = expand_expr ctx e in
    pre @ [ Ast.Return (Some e) ]
  | Ast.Return None -> [ stmt ]
  | Ast.Expr (Ast.Call (name, args)) when Smap.mem name ctx.defined ->
    (* statement call: splice the body, discard any result *)
    let pre_args, args =
      List.fold_left
        (fun (pre, args) arg ->
          let pre_arg, arg = expand_expr ctx arg in
          (pre @ pre_arg, args @ [ arg ]))
        ([], []) args
    in
    let body, _result = expand_call ctx name args in
    pre_args @ body
  | Ast.Expr e ->
    let pre, e = expand_expr ctx e in
    pre @ [ Ast.Expr e ]

and expand_body ctx body = List.concat_map (expand_stmt ctx) body

let program (p : Ast.program) =
  let defined, order = topological_functions p in
  let ctx = { defined; inlined = Hashtbl.create 8; counter = 0 } in
  (* Callees first: every body we splice is already call-free. *)
  List.iter
    (fun (f : Ast.func) ->
      let body = expand_body ctx f.Ast.body in
      Hashtbl.replace ctx.inlined f.Ast.name { f with Ast.body })
    order;
  List.map (fun (f : Ast.func) -> Hashtbl.find ctx.inlined f.Ast.name) p

let entry ?(func = "main") p =
  let p = program p in
  List.find (fun (f : Ast.func) -> String.equal f.Ast.name func) p
