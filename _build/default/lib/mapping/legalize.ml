module G = Cdfg.Graph

exception Unmappable of string

let unmappablef fmt = Format.kasprintf (fun msg -> raise (Unmappable msg)) fmt

let const_offset g node_id =
  let offset_input =
    match (G.kind g node_id, G.inputs g node_id) with
    | G.Fe _, [ _; offset ] | G.Del _, [ _; offset ] | G.St _, [ _; offset; _ ]
      ->
      offset
    | _, _ -> unmappablef "node %d is not a statespace access" node_id
  in
  match G.kind g offset_input with
  | G.Const c ->
    if c < 0 then unmappablef "negative statespace offset %d" c;
    c
  | _ ->
    unmappablef
      "node %d has a dynamic statespace offset (unroll and simplify first)"
      node_id

let check g =
  G.iter g (fun n ->
      match n.G.kind with
      | G.Fe _ | G.St _ | G.Del _ -> ignore (const_offset g n.G.id)
      | G.Const _ | G.Binop _ | G.Unop _ | G.Mux | G.Ss_in _ | G.Ss_out _ -> ());
  List.iter
    (fun (name, id) ->
      (* A named output must reach memory through some store, otherwise the
         tile has nowhere observable to leave it. *)
      let stored =
        G.fold g ~init:false ~f:(fun acc n ->
            acc
            ||
            match n.G.kind with
            | G.St _ -> Array.length n.G.inputs = 3 && n.G.inputs.(2) = id
            | _ -> false)
      in
      if not stored then
        unmappablef "named output %s is not stored to any region" name)
    (G.outputs g)
