lib/mapping/cluster.ml: Array Buffer Cdfg Format Fpfa_arch Fpfa_util Fun Hashtbl Legalize List Printf Queue String
