lib/mapping/cluster.mli: Cdfg Format Fpfa_arch Hashtbl
