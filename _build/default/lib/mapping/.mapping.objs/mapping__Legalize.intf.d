lib/mapping/legalize.mli: Cdfg
