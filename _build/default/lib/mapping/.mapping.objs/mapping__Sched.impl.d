lib/mapping/sched.ml: Array Cluster Format Hashtbl List Queue String
