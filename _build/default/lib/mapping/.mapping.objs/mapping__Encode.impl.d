lib/mapping/encode.ml: Array Cdfg Format Fpfa_arch Fpfa_util Fun Job List Printf String
