lib/mapping/parametric.ml: Array Format Job List Printf String
