lib/mapping/alloc.mli: Fpfa_arch Job Sched
