lib/mapping/metrics.ml: Array Format Fpfa_arch Fpfa_util Job List Printf
