lib/mapping/sched.mli: Cluster Format
