lib/mapping/job.mli: Cdfg Format Fpfa_arch
