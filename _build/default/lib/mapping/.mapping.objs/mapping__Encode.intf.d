lib/mapping/encode.mli: Format Job
