lib/mapping/parametric.mli: Job
