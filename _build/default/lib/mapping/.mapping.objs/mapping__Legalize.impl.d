lib/mapping/legalize.ml: Array Cdfg Format List
