lib/mapping/metrics.mli: Format Job
