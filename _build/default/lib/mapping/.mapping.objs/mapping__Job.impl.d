lib/mapping/job.ml: Array Cdfg Char Format Fpfa_arch Fpfa_util List Printf String
