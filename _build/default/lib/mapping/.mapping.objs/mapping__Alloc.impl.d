lib/mapping/alloc.ml: Array Cdfg Cluster Format Fpfa_arch Fun Hashtbl Job Legalize List Printf Sched String Sys
