(** Linear-parametric jobs: one configuration reused across loop
    iterations.

    Two jobs mapped from consecutive loop iterations are {e isomorphic}
    when they differ only in memory addresses and ALU immediates; the
    per-field differences are then the iteration {e strides}, and the job
    for any iteration [k] is obtained by linear extrapolation. This is how
    a reconfigurable sequencer executes a loop from a single configuration
    with address-generator strides instead of one configuration per
    unrolled iteration (the paper's Section VII future work).

    Construction checks structural isomorphism (shape, clusters, PPs,
    ports, registers, cycle numbers all equal); linearity of the strided
    fields over the whole trip range is the caller's obligation and is
    checked end-to-end by {!Fpfa_core.Loop_flow}. *)

type t

val of_pair : base_k:int -> base:Job.t -> next:Job.t -> (t, string) result
(** [of_pair ~base_k ~base ~next] derives strides from the jobs of
    iterations [base_k] and [base_k + 1]. [Error reason] when the jobs are
    not isomorphic (the loop body does not map uniformly). *)

val instantiate : t -> int -> Job.t
(** [instantiate t k] is the job of iteration [k] (any integer; fields are
    extrapolated linearly from the base). The base's CDFG and debug node
    ids are kept. *)

val base_job : t -> Job.t
val base_k : t -> int

val stride_count : t -> int
(** Number of fields with a non-zero stride (the size of the patch table a
    sequencer would hold). *)

val patch_words : t -> int
(** Configuration words for the patch table: one (field locator, stride)
    pair per strided field, 2 words each. *)

type access = {
  location : Job.mem_loc;  (** at the base iteration *)
  stride : int;  (** address delta per iteration *)
  is_write : bool;
}

val accesses : t -> access list
(** Every memory access of the job (move/copy reads; write-back, copy and
    delete writes) with its per-iteration address stride. Used to check
    that accesses distinct at the base iteration can never collide at
    another iteration (the job's internal ordering assumed they do not
    alias). *)
