module B = Fpfa_util.Bytesio
module Arch = Fpfa_arch.Arch

exception Corrupt of string

let magic = "FCFG"
let version = 1

(* ------------------------- field helpers ------------------------- *)

let write_reg w (r : Job.reg) =
  B.u8 w r.Job.pp;
  B.u8 w r.Job.bank;
  B.u8 w r.Job.index

let read_reg r : Job.reg =
  let pp = B.read_u8 r in
  let bank = B.read_u8 r in
  let index = B.read_u8 r in
  { Job.pp; bank; index }

let write_loc w (loc : Job.mem_loc) =
  B.u8 w loc.Job.mpp;
  B.u8 w loc.Job.mem;
  B.u16 w loc.Job.addr

let read_loc r : Job.mem_loc =
  let mpp = B.read_u8 r in
  let mem = B.read_u8 r in
  let addr = B.read_u16 r in
  { Job.mpp; mem; addr }

let binop_code op =
  match
    Fpfa_util.Listx.index_of (fun c -> c = op) Cdfg.Op.all_binops
  with
  | Some i -> i
  | None -> assert false

let unop_code op =
  match Fpfa_util.Listx.index_of (fun c -> c = op) Cdfg.Op.all_unops with
  | Some i -> i
  | None -> assert false

let write_action w (a : Job.action) =
  match a with
  | Job.Bin op ->
    B.u8 w 0;
    B.u8 w (binop_code op)
  | Job.Un op ->
    B.u8 w 1;
    B.u8 w (unop_code op)
  | Job.Mux3 -> B.u8 w 2
  | Job.Pass -> B.u8 w 3

let read_action r : Job.action =
  match B.read_u8 r with
  | 0 -> (
    match List.nth_opt Cdfg.Op.all_binops (B.read_u8 r) with
    | Some op -> Job.Bin op
    | None -> raise (Corrupt "bad binop code"))
  | 1 -> (
    match List.nth_opt Cdfg.Op.all_unops (B.read_u8 r) with
    | Some op -> Job.Un op
    | None -> raise (Corrupt "bad unop code"))
  | 2 -> Job.Mux3
  | 3 -> Job.Pass
  | tag -> raise (Corrupt (Printf.sprintf "bad action tag %d" tag))

let write_arg w pos (a : Job.arg) =
  match a with
  | Job.Port p ->
    B.u8 w 0;
    B.u8 w p
  | Job.Node id ->
    B.u8 w 1;
    B.i32 w (pos id)

let read_arg r ids : Job.arg =
  match B.read_u8 r with
  | 0 -> Job.Port (B.read_u8 r)
  | 1 -> Job.Node (ids (B.read_i32 r))
  | tag -> raise (Corrupt (Printf.sprintf "bad arg tag %d" tag))

(* ------------------------- cycle records ------------------------- *)

let write_cycle w pos (c : Job.cycle) =
  B.list w c.Job.moves (fun w (m : Job.move) ->
      write_loc w m.Job.src;
      write_reg w m.Job.dst;
      B.i32 w (pos m.Job.carried);
      B.i32 w m.Job.for_cluster);
  B.list w c.Job.copies (fun w (cp : Job.copy) ->
      write_loc w cp.Job.csrc;
      write_loc w cp.Job.cdst;
      B.i32 w (pos cp.Job.kept));
  B.list w c.Job.alu (fun w (work : Job.alu_work) ->
      B.i32 w work.Job.wcluster;
      B.u8 w work.Job.wpp;
      B.list w work.Job.port_regs (fun w (p, reg) ->
          B.u8 w p;
          write_reg w reg);
      B.list w work.Job.port_imms (fun w (p, v) ->
          B.u8 w p;
          B.i64 w v);
      B.list w work.Job.micros (fun w (m : Job.micro) ->
          B.i32 w (pos m.Job.node);
          write_action w m.Job.action;
          B.list w m.Job.args (fun w a -> write_arg w pos a));
      B.list w work.Job.writes (fun w (wr : Job.write) ->
          write_loc w wr.Job.target;
          B.i32 w wr.Job.wcycle;
          B.option w wr.Job.source_store (fun w id -> B.i32 w (pos id)));
      B.list w work.Job.reg_dests (fun w (cycle, reg) ->
          B.i32 w cycle;
          write_reg w reg));
  B.list w c.Job.deletes (fun w (d : Job.delete_work) ->
      B.i32 w d.Job.dcluster;
      write_loc w d.Job.dloc;
      B.i32 w d.Job.dcycle)

let read_cycle r ids : Job.cycle =
  let moves =
    B.read_list r (fun r ->
        let src = read_loc r in
        let dst = read_reg r in
        let carried = ids (B.read_i32 r) in
        let for_cluster = B.read_i32 r in
        { Job.src; dst; carried; for_cluster })
  in
  let copies =
    B.read_list r (fun r ->
        let csrc = read_loc r in
        let cdst = read_loc r in
        let kept = ids (B.read_i32 r) in
        { Job.csrc; cdst; kept })
  in
  let alu =
    B.read_list r (fun r ->
        let wcluster = B.read_i32 r in
        let wpp = B.read_u8 r in
        let port_regs =
          B.read_list r (fun r ->
              let p = B.read_u8 r in
              (p, read_reg r))
        in
        let port_imms =
          B.read_list r (fun r ->
              let p = B.read_u8 r in
              (p, B.read_i64 r))
        in
        let micros =
          B.read_list r (fun r ->
              let node = ids (B.read_i32 r) in
              let action = read_action r in
              let args = B.read_list r (fun r -> read_arg r ids) in
              { Job.node; action; args })
        in
        let writes =
          B.read_list r (fun r ->
              let target = read_loc r in
              let wcycle = B.read_i32 r in
              let source_store =
                B.read_option r (fun r -> ids (B.read_i32 r))
              in
              { Job.target; wcycle; source_store })
        in
        let reg_dests =
          B.read_list r (fun r ->
              let cycle = B.read_i32 r in
              (cycle, read_reg r))
        in
        { Job.wcluster; wpp; port_regs; port_imms; micros; writes; reg_dests })
  in
  let deletes =
    B.read_list r (fun r ->
        let dcluster = B.read_i32 r in
        let dloc = read_loc r in
        let dcycle = B.read_i32 r in
        { Job.dcluster; dloc; dcycle })
  in
  { Job.moves; copies; alu; deletes }

(* ------------------------- whole image ------------------------- *)

let write_tile w (t : Arch.tile) =
  B.u8 w t.Arch.alu_count;
  B.u8 w t.Arch.banks_per_pp;
  B.u8 w t.Arch.regs_per_bank;
  B.u8 w t.Arch.memories_per_pp;
  B.i32 w t.Arch.memory_size;
  B.u8 w t.Arch.buses;
  B.u8 w t.Arch.move_window;
  B.u8 w t.Arch.alu.Arch.max_inputs;
  B.u8 w t.Arch.alu.Arch.max_depth;
  B.u8 w t.Arch.alu.Arch.max_multipliers;
  B.u8 w t.Arch.alu.Arch.max_ops

let read_tile r : Arch.tile =
  let alu_count = B.read_u8 r in
  let banks_per_pp = B.read_u8 r in
  let regs_per_bank = B.read_u8 r in
  let memories_per_pp = B.read_u8 r in
  let memory_size = B.read_i32 r in
  let buses = B.read_u8 r in
  let move_window = B.read_u8 r in
  let max_inputs = B.read_u8 r in
  let max_depth = B.read_u8 r in
  let max_multipliers = B.read_u8 r in
  let max_ops = B.read_u8 r in
  let tile =
    {
      Arch.alu_count;
      banks_per_pp;
      regs_per_bank;
      memories_per_pp;
      memory_size;
      buses;
      move_window;
      alu = { Arch.max_inputs; max_depth; max_multipliers; max_ops };
    }
  in
  (* A corrupted image must not drive machine allocation: reject anything a
     plausible tile would never carry before the simulator builds arrays
     sized by these fields. *)
  if memory_size > 1 lsl 20 then raise (Corrupt "implausible memory size");
  (match Arch.validate tile with
  | () -> ()
  | exception Invalid_argument msg -> raise (Corrupt ("bad tile: " ^ msg)));
  tile

(* The hardware-relevant sections (everything except the embedded debug
   CDFG). *)
let config_sections w pos (job : Job.t) =
  write_tile w job.Job.tile;
  B.list w job.Job.region_homes (fun w (region, slices) ->
      B.str w region;
      B.list w slices write_loc);
  B.list w job.Job.region_sizes (fun w (region, size) ->
      B.str w region;
      B.i32 w size);
  B.list w (Array.to_list job.Job.exec_cycle_of_level) B.i32;
  B.list w (Array.to_list job.Job.cycles) (fun w c -> write_cycle w pos c)

let to_string (job : Job.t) =
  let w = B.writer () in
  B.str w magic;
  B.u8 w version;
  (* the debug CDFG comes first so the decoder can resolve node ids while
     reading the per-cycle records *)
  let graph_bytes, pos = Cdfg.Serialize.to_string_mapped job.Job.graph in
  B.blob w graph_bytes;
  config_sections w pos job;
  B.contents w

let of_string data =
  try
    let r = B.reader data in
    if B.read_str r <> magic then raise (Corrupt "bad magic");
    let v = B.read_u8 r in
    if v <> version then raise (Corrupt (Printf.sprintf "unknown version %d" v));
    let graph, ids = Cdfg.Serialize.of_string_mapped (B.read_blob r) in
    let tile = read_tile r in
    let region_homes =
      B.read_list r (fun r ->
          let region = B.read_str r in
          (region, B.read_list r read_loc))
    in
    let region_sizes =
      B.read_list r (fun r ->
          let region = B.read_str r in
          (region, B.read_i32 r))
    in
    let exec_cycle_of_level = Array.of_list (B.read_list r B.read_i32) in
    let cycles = Array.of_list (B.read_list r (fun r -> read_cycle r ids)) in
    if not (B.at_end r) then raise (Corrupt "trailing bytes");
    {
      Job.tile;
      graph;
      cycles;
      region_homes;
      region_sizes;
      exec_cycle_of_level;
    }
  with
  | B.Corrupt msg -> raise (Corrupt msg)
  | Cdfg.Serialize.Corrupt msg -> raise (Corrupt msg)

let to_file job path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string job))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let size_words job =
  let w = B.writer () in
  let _, pos = Cdfg.Serialize.to_string_mapped job.Job.graph in
  config_sections w pos job;
  (B.length w + 1) / 2

let pp_summary fmt job =
  Format.fprintf fmt "config: %d cycles, %d words (%d bytes with debug CDFG)"
    (Job.cycle_count job) (size_words job)
    (String.length (to_string job))
