(** Tile configuration encoding.

    The FPFA's shared control unit executes a per-cycle configuration; the
    real toolchain's final output is that binary. This module serialises a
    {!Job.t} into a self-contained little-endian configuration image
    (header, tile parameters, embedded CDFG for conformance checking,
    region map, then one record per clock cycle) and decodes it back.

    The image size is also the model for reconfiguration cost: loading a
    configuration of [size_words] words through the configuration port
    takes [size_words / config_words_per_cycle] cycles
    (see {!Fpfa_core.Pipeline}). *)

exception Corrupt of string

val to_string : Job.t -> string
val of_string : string -> Job.t
(** Exact round-trip up to CDFG node renumbering: the decoded job simulates
    identically and [conforms] iff the original did.
    @raise Corrupt on malformed images. *)

val to_file : Job.t -> string -> unit
val of_file : string -> Job.t

val size_words : Job.t -> int
(** Configuration size in 16-bit words (image bytes / 2, rounded up),
    excluding the embedded debug CDFG — the part real hardware would
    load. *)

val pp_summary : Format.formatter -> Job.t -> unit
(** One line: cycles, configuration words, bytes. *)
