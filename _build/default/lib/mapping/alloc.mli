(** Phase 3 — heuristic resource allocation (paper VI-C, Fig. 5).

    Levels are allocated in order. For each level:
    - every cluster's ALU executes at the level's clock cycle; its result is
      written back over the crossbar to the statespace cells of its stores
      and, when other clusters consume the value, to a scratch word in its
      PP's local memory ("for each output do store it to a memory");
    - every register operand is moved from memory into the consumer's input
      register bank at the clock cycle [move_window] steps before the
      execute cycle, falling back to window-1, ..., 1 steps before ("try to
      move it to the proper register at the clock cycle which is four steps
      before; if failed, three; two; one");
    - when some operand cannot be moved (bus, memory-port or register-bank
      conflicts, or the value is not yet in memory), clock cycles are
      inserted before the level until all operands fit ("insert one or more
      clock cycles before the current one to load inputs").

    Resource model enforced per clock cycle: [tile.buses] crossbar
    transfers; one read and one write port per memory; [regs_per_bank]
    registers per bank, operands occupying their register from the move
    cycle through the execute cycle; write-backs that find the target
    memory's write port busy are deferred to the next free cycle (cell
    write order is preserved).

    The allocation is linear in the number of clusters (paper VI-C),
    modulo the bounded window/conflict searches. *)

type options = {
  locality : bool;
      (** place a region in the memory of the PP that first stores to
          (else first reads) it; [false] scatters regions round-robin
          (ablation for the paper's "locality of reference" claim) *)
  forwarding : bool;
      (** extension: also write results straight into a consumer's input
          register at the producer's cycle when the consumer executes
          within the move window, skipping the memory round-trip *)
  interleave : bool;
      (** extension: split arrays of 4+ words across the PP's two memories
          (cell [i] -> memory [i mod 2], address [i/2]), doubling the read
          bandwidth of hot arrays at no port cost *)
}

val default_options : options
(** [locality = true; forwarding = false; interleave = false] — the
    paper's algorithm. *)

exception Allocation_error of string

val run : ?options:options -> tile:Fpfa_arch.Arch.tile -> Sched.t -> Job.t
(** Allocates a scheduled clustering onto the tile.
    @raise Allocation_error when a region does not fit in any memory or a
    conflict cannot be resolved within the search bounds.
    @raise Legalize.Unmappable on dynamic statespace offsets. *)
