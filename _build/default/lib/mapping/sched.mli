(** Phase 2 — scheduling clusters on the tile's physical ALUs (paper VI-B,
    Fig. 4).

    Clusters are placed level by level: at most [alu_count] ALU-using
    clusters share a level. Critical-path clusters (zero mobility) are
    placed first; off-critical clusters move down within their mobility
    range, and a new level is inserted whenever a level overflows. The
    procedure is linear in the number of clusters. *)

type t = {
  clustering : Cluster.t;
  level_of : int array;  (** cid -> level *)
  levels : int list array;  (** level -> cids, in placement order *)
  asap : int array;
  alap : int array;
}

exception Scheduling_error of string

type priority =
  | Mobility  (** least [alap - asap] first — the paper's critical-first *)
  | Alap_first  (** earliest deadline first *)
  | Cid_order  (** discovery order — the naive baseline *)

val run : ?alu_count:int -> ?priority:priority -> Cluster.t -> t
(** [alu_count] defaults to 5 (one FPFA tile); [priority] (default
    {!Mobility}) selects which ready clusters win a contended level —
    benched as an ablation of the paper's "critical path first" choice. *)

val level_count : t -> int

val critical_path_levels : t -> int
(** Number of levels an unbounded tile would need (max ASAP + 1): the lower
    bound the list scheduler is compared against. *)

val mobility : t -> int -> int
(** [alap - asap] of a cluster. *)

val uses_alu : Cluster.cluster -> bool
(** Delete-only clusters occupy memory ports but no ALU slot. *)

val validate : t -> alu_count:int -> unit
(** Dependences respected (level(src)+weight <= level(dst)), level capacity
    never exceeded. @raise Scheduling_error *)

val pp : Format.formatter -> t -> unit
(** Fig. 4-style level table. *)
