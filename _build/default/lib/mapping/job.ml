type reg = { pp : int; bank : int; index : int }
type mem_loc = { mpp : int; mem : int; addr : int }

type arg = Port of int | Node of Cdfg.Graph.id

type action = Bin of Cdfg.Op.binop | Un of Cdfg.Op.unop | Mux3 | Pass

type micro = { node : Cdfg.Graph.id; action : action; args : arg list }

type write = {
  target : mem_loc;
  wcycle : int;
  source_store : Cdfg.Graph.id option;
}

type alu_work = {
  wcluster : int;
  wpp : int;
  port_regs : (int * reg) list;
  port_imms : (int * int) list;
  micros : micro list;
  writes : write list;
  reg_dests : (int * reg) list;
}

type delete_work = { dcluster : int; dloc : mem_loc; dcycle : int }

type move = {
  src : mem_loc;
  dst : reg;
  carried : Cdfg.Graph.id;
  for_cluster : int;
}

type copy = { csrc : mem_loc; cdst : mem_loc; kept : Cdfg.Graph.id }

type cycle = {
  moves : move list;
  copies : copy list;
  alu : alu_work list;
  deletes : delete_work list;
}

type t = {
  tile : Fpfa_arch.Arch.tile;
  graph : Cdfg.Graph.t;
  cycles : cycle array;
  region_homes : (string * mem_loc list) list;
  region_sizes : (string * int) list;
  exec_cycle_of_level : int array;
}

let cycle_count t = Array.length t.cycles

let home_of t region = List.assoc region t.region_homes

let interleaved_cell slices offset =
  let k = List.length slices in
  assert (k > 0 && offset >= 0);
  let base = List.nth slices (offset mod k) in
  { base with addr = base.addr + (offset / k) }

let cell_of t region offset = interleaved_cell (home_of t region) offset

let size_of t region =
  match List.assoc_opt region t.region_sizes with Some s -> s | None -> 0

(* Bank letters only for the real banks; malformed jobs (e.g. corrupted
   configuration images) may carry any integer and must still print. *)
let bank_name bank =
  if bank >= 0 && bank < 26 then String.make 1 (Char.chr (Char.code 'a' + bank))
  else Printf.sprintf "bank%d" bank

let pp_reg fmt { pp; bank; index } =
  Format.fprintf fmt "PP%d.%s%d" pp (bank_name bank) index

let pp_mem_loc fmt { mpp; mem; addr } =
  Format.fprintf fmt "PP%d.MEM%d[%d]" mpp (mem + 1) addr

let pp_action fmt = function
  | Bin op -> Format.pp_print_string fmt (Cdfg.Op.binop_to_string op)
  | Un op -> Format.pp_print_string fmt (Cdfg.Op.unop_to_string op)
  | Mux3 -> Format.pp_print_string fmt "mux"
  | Pass -> Format.pp_print_string fmt "pass"

let pp_arg fmt = function
  | Port p -> Format.fprintf fmt "R%s" (bank_name p)
  | Node id -> Format.fprintf fmt "t%d" id

let pp_micro fmt m =
  Format.fprintf fmt "t%d=%a(%a)" m.node pp_action m.action
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       pp_arg)
    m.args

let pp_cycle _graph fmt c =
  List.iter
    (fun mv ->
      Format.fprintf fmt "  move %a -> %a (v%d, Clu%d)@," pp_mem_loc mv.src
        pp_reg mv.dst mv.carried mv.for_cluster)
    c.moves;
  List.iter
    (fun cp ->
      Format.fprintf fmt "  keep %a -> %a (v%d)@," pp_mem_loc cp.csrc
        pp_mem_loc cp.cdst cp.kept)
    c.copies;
  List.iter
    (fun w ->
      Format.fprintf fmt "  alu PP%d Clu%d: %a%s@," w.wpp w.wcluster
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
           pp_micro)
        w.micros
        (String.concat ""
           (List.map
              (fun wr -> Format.asprintf " ->%a@@%d" pp_mem_loc wr.target wr.wcycle)
              w.writes
           @ List.map
               (fun (cyc, r) -> Format.asprintf " ->%a@@%d" pp_reg r cyc)
               w.reg_dests)))
    c.alu;
  List.iter
    (fun d ->
      Format.fprintf fmt "  del %a (Clu%d)@," pp_mem_loc d.dloc d.dcluster)
    c.deletes

let pp fmt t =
  Format.fprintf fmt "@[<v>job for %s: %d cycles@," (Cdfg.Graph.name t.graph)
    (Array.length t.cycles);
  List.iter
    (fun (region, slices) ->
      Format.fprintf fmt "region %s @@ %s (+%d words%s)@," region
        (String.concat " | "
           (List.map (Format.asprintf "%a" pp_mem_loc) slices))
        (size_of t region)
        (if List.length slices > 1 then
           Printf.sprintf ", %d-way interleaved" (List.length slices)
         else ""))
    t.region_homes;
  Array.iteri
    (fun i c ->
      Format.fprintf fmt "cycle %d:@," i;
      pp_cycle t.graph fmt c)
    t.cycles;
  Format.fprintf fmt "@]"

(* Timeline view: columns are cycles; PP rows show the firing cluster (as
   a letter-coded id), the xfer row counts crossbar transfers per cycle. *)
let pp_gantt fmt t =
  let cycles = Array.length t.cycles in
  let alu_count = t.tile.Fpfa_arch.Arch.alu_count in
  let cell_of_pp pp cycle =
    match
      List.find_opt (fun w -> w.wpp = pp) t.cycles.(cycle).alu
    with
    | Some w ->
      let text = string_of_int w.wcluster in
      if String.length text <= 2 then text else String.sub text 0 2
    | None -> "."
  in
  let width = 3 in
  let pad s = s ^ String.make (max 0 (width - String.length s)) ' ' in
  Format.fprintf fmt "@[<v>cycle ";
  for c = 0 to cycles - 1 do
    Format.pp_print_string fmt (pad (string_of_int c))
  done;
  Format.pp_print_cut fmt ();
  for pp = 0 to alu_count - 1 do
    Format.fprintf fmt "PP%d   " pp;
    for c = 0 to cycles - 1 do
      Format.pp_print_string fmt (pad (cell_of_pp pp c))
    done;
    Format.pp_print_cut fmt ()
  done;
  Format.fprintf fmt "moves ";
  for c = 0 to cycles - 1 do
    let n = List.length t.cycles.(c).moves + List.length t.cycles.(c).copies in
    Format.pp_print_string fmt (pad (if n = 0 then "." else string_of_int n))
  done;
  Format.pp_print_cut fmt ();
  Format.fprintf fmt "wb    ";
  for c = 0 to cycles - 1 do
    let n =
      Fpfa_util.Listx.sum
        (List.map
           (fun w ->
             List.length (List.filter (fun wr -> wr.wcycle = c) w.writes))
           (Array.to_list t.cycles |> List.concat_map (fun cy -> cy.alu)))
    in
    Format.pp_print_string fmt (pad (if n = 0 then "." else string_of_int n))
  done;
  Format.fprintf fmt "@]"
