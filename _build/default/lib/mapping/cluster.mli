(** Phase 1 — task clustering and ALU data-path mapping (paper VI-A).

    The task graph is partitioned into {e clusters}, each executable by one
    FPFA ALU in one clock cycle: a connected subgraph of value operations
    with a single externally visible result, at most
    {!Fpfa_arch.Arch.alu_caps.max_inputs} distinct operands, bounded depth,
    and a bounded number of multiplier-class operations. Store nodes attach
    to the cluster producing their value (the cluster's write-back); a
    store of a constant or of a fetched value becomes a pass-through
    cluster (the ALU forwards one operand unchanged). Delete nodes become
    memory-only clusters.

    Fetch ([Fe]) and constant nodes are not clustered: they are cluster
    {e inputs}, handled by phase 3 as register moves and immediates. *)

type cluster = {
  cid : int;
  ops : Cdfg.Graph.id list;
      (** value operations, topologically ordered; empty for pass-through
          and memory-only clusters *)
  root : Cdfg.Graph.id option;
      (** node producing the cluster's result (a member op, or the
          forwarded source for a pass-through); [None] for delete-only *)
  stores : Cdfg.Graph.id list;  (** [St] nodes written back by this cluster *)
  deletes : Cdfg.Graph.id list;  (** [Del] nodes executed by this cluster *)
  cinputs : Cdfg.Graph.id list;
      (** distinct external operands in port order (constants included) *)
}

type edge = { src : int; dst : int; weight : int }
(** [dst] must be scheduled at least [weight] levels after [src]; weight 0
    allows sharing a level (anti-dependences). *)

type t = {
  graph : Cdfg.Graph.t;
  clusters : cluster array;
  edges : edge list;
  cluster_of : (Cdfg.Graph.id, int) Hashtbl.t;
      (** op/St/Del node -> cluster id *)
}

exception Clustering_error of string

val run : ?caps:Fpfa_arch.Arch.alu_caps -> Cdfg.Graph.t -> t
(** Datapath-template clustering (greedy, deterministic). [caps] defaults
    to {!Fpfa_arch.Arch.paper_alu}. The graph must pass
    {!Legalize.check}. *)

val sarkar : ?caps:Fpfa_arch.Arch.alu_caps -> Cdfg.Graph.t -> t
(** Sarkar-style edge-zeroing clustering (the paper's reference [4]): unit
    clusters merged along data edges in topological edge order whenever the
    fused cluster still fits the ALU data path. In the one-cycle-per-cluster
    model a legal merge never lengthens the critical path, so the
    completion-time guard of the original algorithm reduces to the
    data-path check. *)

val unit_clusters : Cdfg.Graph.t -> t
(** Baseline: every operation is its own cluster (Sarkar's two-phase
    starting point without data-path fusion). *)

val inputs_of : cluster -> Cdfg.Graph.id list
(** [cluster.cinputs]. *)

val preds : t -> int -> (int * int) list
(** [(src, weight)] dependency list of a cluster. *)

val succs : t -> int -> (int * int) list

val validate : t -> Fpfa_arch.Arch.alu_caps -> unit
(** Checks every cluster against the data-path constraints and the edge
    relation for acyclicity (weight-1 cycles are errors; a weight-0 cycle
    is also rejected). @raise Clustering_error *)

val pp_cluster : Cdfg.Graph.t -> Format.formatter -> cluster -> unit

val to_dot : t -> string
(** Graphviz view of the cluster DAG: one node per cluster (operations and
    write-backs in the label), solid edges for weight-1 dependences and
    dashed for weight-0 anti-dependences. *)
