(** The output of resource allocation: "the job of an FPFA tile for each
    clock cycle" (paper Fig. 5).

    A job is a cycle-indexed program for the whole tile: register moves
    issued over the crossbar, ALU configurations with their operand
    sources, memory write-backs and deletes. The {!Fpfa_sim} simulator
    executes jobs and re-checks every hardware constraint dynamically. *)

type reg = { pp : int; bank : int; index : int }
type mem_loc = { mpp : int; mem : int; addr : int }

type arg =
  | Port of int  (** ALU input port (register bank or immediate) *)
  | Node of Cdfg.Graph.id  (** result of an earlier micro-op in the bundle *)

type action = Bin of Cdfg.Op.binop | Un of Cdfg.Op.unop | Mux3 | Pass

type micro = { node : Cdfg.Graph.id; action : action; args : arg list }

type write = {
  target : mem_loc;
  wcycle : int;  (** cycle at which the word is committed *)
  source_store : Cdfg.Graph.id option;
      (** the [St] node this write realises; [None] for scratch spills *)
}

type alu_work = {
  wcluster : int;
  wpp : int;
  port_regs : (int * reg) list;  (** port -> register operand *)
  port_imms : (int * int) list;  (** port -> immediate operand *)
  micros : micro list;  (** topological order; the last one is the root *)
  writes : write list;  (** memory write-backs of the root value *)
  reg_dests : (int * reg) list;
      (** (cycle, register) direct forwards of the root value *)
}

type delete_work = { dcluster : int; dloc : mem_loc; dcycle : int }

type move = {
  src : mem_loc;
  dst : reg;
  carried : Cdfg.Graph.id;  (** CDFG value node the word represents *)
  for_cluster : int;
}

type copy = {
  csrc : mem_loc;
  cdst : mem_loc;
  kept : Cdfg.Graph.id;  (** the fetch whose value the copy preserves *)
}
(** Memory-to-memory preservation: the source word is about to be
    overwritten while later levels still fetch its old value, so it is
    copied to a scratch cell first (read at cycle start, committed at cycle
    end, one crossbar lane). *)

type cycle = {
  moves : move list;
  copies : copy list;
  alu : alu_work list;  (** at most one per PP *)
  deletes : delete_work list;
}

type t = {
  tile : Fpfa_arch.Arch.tile;
  graph : Cdfg.Graph.t;
  cycles : cycle array;
  region_homes : (string * mem_loc list) list;
      (** base address of each region's slices, sorted by name. One slice =
          contiguous storage; K slices = the region is interleaved, cell
          [i] living at slice [i mod K], address [base + i / K] *)
  region_sizes : (string * int) list;
      (** words reserved per region (declared size or highest static offset
          + 1), sorted by name *)
  exec_cycle_of_level : int array;
}

val cycle_count : t -> int

val home_of : t -> string -> mem_loc list
(** The region's slice bases. @raise Not_found for an unknown region. *)

val cell_of : t -> string -> int -> mem_loc
(** Concrete location of cell [offset] under the region's interleaving. *)

val interleaved_cell : mem_loc list -> int -> mem_loc
(** The addressing formula itself: cell [i] of a K-slice region lives in
    slice [i mod K] at address [base + i / K]. *)

val size_of : t -> string -> int

val pp_reg : Format.formatter -> reg -> unit
val pp_mem_loc : Format.formatter -> mem_loc -> unit
val pp_cycle : Cdfg.Graph.t -> Format.formatter -> cycle -> unit
val pp : Format.formatter -> t -> unit
(** Full per-cycle job listing. *)

val pp_gantt : Format.formatter -> t -> unit
(** Compact timeline: one row per PP showing which cluster fires each
    cycle, plus rows for crossbar moves and memory write-backs. *)
