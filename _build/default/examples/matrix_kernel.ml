(* Mapping a 3x3 matrix multiply — a wider DAG that actually fills the
   tile's five ALUs, plus a comparison of all flow variants on it.

   Run with: dune exec examples/matrix_kernel.exe *)

let () =
  let kernel = Fpfa_kernels.Kernels.matmul ~n:3 in
  Format.printf "kernel: %s@.@." kernel.Fpfa_kernels.Kernels.description;

  let rows =
    List.map
      (fun (v : Baseline.variant) ->
        let result =
          Baseline.map_source v kernel.Fpfa_kernels.Kernels.source
        in
        let ok =
          Fpfa_core.Flow.verify ~memory_init:kernel.Fpfa_kernels.Kernels.inputs
            result
        in
        assert ok;
        Mapping.Metrics.row ~name:v.Baseline.vname
          result.Fpfa_core.Flow.metrics)
      Baseline.all
  in
  Fpfa_util.Tablefmt.print
    ~header:("variant" :: List.tl Mapping.Metrics.header)
    rows;

  (* Show what the multiply-accumulate clusters look like. *)
  let result = Fpfa_core.Flow.map_source kernel.Fpfa_kernels.Kernels.source in
  let clustering = result.Fpfa_core.Flow.clustering in
  Format.printf "@.first clusters of the paper flow:@.";
  Array.iteri
    (fun i c ->
      if i < 6 then
        Format.printf "  %a@."
          (Mapping.Cluster.pp_cluster clustering.Mapping.Cluster.graph)
          c)
    clustering.Mapping.Cluster.clusters;
  Format.printf "@.ALU utilisation: %.0f%% over %d cycles@."
    (100.0 *. result.Fpfa_core.Flow.metrics.Mapping.Metrics.alu_utilisation)
    result.Fpfa_core.Flow.metrics.Mapping.Metrics.cycles
