(* Design-space exploration with the architecture model: how do cycle
   count and energy respond to the tile's ALU count, crossbar width and
   move window? The paper fixes these at 5 / 10 / 4; the library lets a
   user sweep them.

   Run with: dune exec examples/design_space.exe *)

module Arch = Fpfa_arch.Arch

let kernel = Fpfa_kernels.Kernels.fir ~taps:16

let map_with tile =
  let config = { Fpfa_core.Flow.default_config with Fpfa_core.Flow.tile } in
  let result =
    Fpfa_core.Flow.map_source ~config kernel.Fpfa_kernels.Kernels.source
  in
  assert
    (Fpfa_core.Flow.verify ~memory_init:kernel.Fpfa_kernels.Kernels.inputs
       result);
  result.Fpfa_core.Flow.metrics

let () =
  Format.printf "kernel: %s@.@." kernel.Fpfa_kernels.Kernels.description;

  Format.printf "--- ALU count sweep (paper tile has 5) ---@.";
  let rows =
    List.map
      (fun alus ->
        let m = map_with (Arch.with_alu_count alus Arch.paper_tile) in
        [
          string_of_int alus;
          string_of_int m.Mapping.Metrics.cycles;
          string_of_int m.Mapping.Metrics.levels;
          Printf.sprintf "%.2f" m.Mapping.Metrics.alu_utilisation;
          Printf.sprintf "%.0f" m.Mapping.Metrics.energy;
        ])
      [ 1; 2; 3; 4; 5; 8 ]
  in
  Fpfa_util.Tablefmt.print
    ~header:[ "ALUs"; "cycles"; "levels"; "util"; "energy" ]
    rows;

  Format.printf "@.--- crossbar width sweep (paper tile has 10 lanes) ---@.";
  let rows =
    List.map
      (fun buses ->
        let m = map_with (Arch.with_buses buses Arch.paper_tile) in
        [
          string_of_int buses;
          string_of_int m.Mapping.Metrics.cycles;
          string_of_int m.Mapping.Metrics.moves;
        ])
      [ 2; 4; 6; 10; 16 ]
  in
  Fpfa_util.Tablefmt.print ~header:[ "lanes"; "cycles"; "moves" ] rows;

  Format.printf "@.--- move window sweep (paper Fig. 5 uses 4) ---@.";
  let rows =
    List.map
      (fun window ->
        let m = map_with (Arch.with_move_window window Arch.paper_tile) in
        [
          string_of_int window;
          string_of_int m.Mapping.Metrics.cycles;
          string_of_int m.Mapping.Metrics.inserted_cycles;
        ])
      [ 1; 2; 3; 4; 6 ]
  in
  Fpfa_util.Tablefmt.print ~header:[ "window"; "cycles"; "stalls" ] rows
