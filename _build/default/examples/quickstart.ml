(* Quickstart: map a C function onto one FPFA tile and run it.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
void main() {
  /* 4-tap weighted sum, the kind of inner loop the FPFA targets */
  acc = 0;
  for (i = 0; i < 4; i++) {
    acc = acc + w[i] * x[i];
  }
  y[0] = acc >> 2;
}
|}

let () =
  (* One call runs the whole published flow: C -> CDFG -> minimised CDFG ->
     clusters -> level schedule -> per-cycle tile job. *)
  let result = Fpfa_core.Flow.map_source source in

  Format.printf "=== flow summary ===@.%a@.@." Fpfa_core.Flow.pp_summary result;

  (* Every intermediate stage stays inspectable. *)
  Format.printf "=== level schedule (paper Fig. 4 style) ===@.%a@."
    Mapping.Sched.pp result.Fpfa_core.Flow.schedule;

  (* Execute the mapped job on the cycle-accurate tile simulator. *)
  let memory_init =
    [ ("w", [| 1; -2; 3; -4 |]); ("x", [| 10; 20; 30; 40 |]) ]
  in
  let memory, trace = Fpfa_sim.Sim.run ~memory_init result.Fpfa_core.Flow.job in
  Format.printf "@.=== simulation ===@.";
  List.iter
    (fun (region, contents) ->
      Format.printf "%s = [%s]@." region
        (String.concat "; " (Array.to_list (Array.map string_of_int contents))))
    memory;
  Format.printf "ran %d cycles, %d moves, %d memory writes@."
    trace.Fpfa_sim.Sim.cycles_run trace.Fpfa_sim.Sim.moves_executed
    trace.Fpfa_sim.Sim.writes_executed;

  (* And check the tile against the reference C interpreter. *)
  Format.printf "@.verified against reference interpreter: %b@."
    (Fpfa_core.Flow.verify ~memory_init result)
