(* The paper's future work, live: "loops should be included in the
   clustering, scheduling and resource allocation phase."

   A three-loop DSP block is mapped two ways:
   - fully unrolled (the paper's published approach), and
   - segment-staged: each counted loop becomes ONE body configuration
     replayed with per-iteration address strides (configuration reuse).

   Run with: dune exec examples/loop_reuse.exe *)

let source =
  {|
void main() {
  /* loop 1: peak detection (reduction through memory) */
  peak = 1;
  for (i = 0; i < 12; i++) { peak = max(peak, abs(sig[i])); }

  /* loop 2: normalisation (elementwise, linear in i) */
  for (i = 0; i < 12; i++) { level[i] = (sig[i] << 6) / peak; }

  /* loop 3: first difference (strided neighbours) */
  for (i = 0; i < 11; i++) { diff[i] = level[i + 1] - level[i]; }
}
|}

let memory_init =
  [ ("sig", [| 3; -14; 27; -5; 19; -33; 8; 41; -12; 6; -28; 17 |]) ]

let () =
  Format.printf "=== source ===@.%s@." source;

  (match Fpfa_core.Loop_flow.map_source source with
  | Fpfa_core.Loop_flow.Looped staged as outcome ->
    Format.printf "=== staged mapping ===@.%a@.@."
      Fpfa_core.Loop_flow.pp_outcome outcome;
    List.iteri
      (fun n (l : Fpfa_core.Loop_flow.loop_segment) ->
        Format.printf
          "loop %d: %d iterations reuse one %d-cycle configuration (%d \
           strided fields, patch table %d words)@."
          (n + 1) l.Fpfa_core.Loop_flow.trips
          (Mapping.Job.cycle_count
             (Mapping.Parametric.base_job l.Fpfa_core.Loop_flow.body))
          (Mapping.Parametric.stride_count l.Fpfa_core.Loop_flow.body)
          (Mapping.Parametric.patch_words l.Fpfa_core.Loop_flow.body))
      (Fpfa_core.Loop_flow.loops staged);

    (match Fpfa_core.Loop_flow.compare_costs source with
    | Some c ->
      Format.printf
        "@.configuration: %d words staged vs %d words fully unrolled \
         (%.1fx smaller)@.compute:       %d cycles staged vs %d cycles \
         unrolled (the reuse trade-off)@."
        c.Fpfa_core.Loop_flow.looped_config_words
        c.Fpfa_core.Loop_flow.unrolled_config_words
        (float_of_int c.Fpfa_core.Loop_flow.unrolled_config_words
        /. float_of_int c.Fpfa_core.Loop_flow.looped_config_words)
        c.Fpfa_core.Loop_flow.looped_cycles
        c.Fpfa_core.Loop_flow.unrolled_cycles
    | None -> ());

    let final = Fpfa_core.Loop_flow.run ~memory_init staged in
    Format.printf "@.peak  = %d@."
      (match List.assoc "peak" final with [| v |] -> v | _ -> 0);
    let show name =
      match List.assoc_opt name final with
      | Some arr ->
        Format.printf "%-5s = [%s]@." name
          (String.concat "; " (Array.to_list (Array.map string_of_int arr)))
      | None -> ()
    in
    show "level";
    show "diff";

    Format.printf "@.verified against the reference interpreter: %b@."
      (Fpfa_core.Loop_flow.verify ~memory_init source
         (Fpfa_core.Loop_flow.Looped staged))
  | Fpfa_core.Loop_flow.Unrolled (_, reason) ->
    Format.printf "fell back to full unrolling: %s@." reason)
