(* The paper's own running example: the FIR filter of Section V.

   Reproduces the story of paper Figures 3-5 on one kernel: the generated
   CDFG, its shape after complete loop unrolling and full simplification,
   the cluster schedule, and the final per-cycle tile job.

   Run with: dune exec examples/fir_filter.exe *)

let () =
  let kernel = Fpfa_kernels.Kernels.fir_paper in
  Format.printf "=== source (paper Section V) ===@.%s@.@."
    kernel.Fpfa_kernels.Kernels.source;

  let result = Fpfa_core.Flow.map_source kernel.Fpfa_kernels.Kernels.source in

  (* Fig. 3: "after complete loop unrolling and full simplification" the
     graph is a DAG of fetches, one multiply per tap, an adder tree and the
     final stores of sum and i. *)
  let before = result.Fpfa_core.Flow.simplify_report.Transform.Simplify.before in
  let after = result.Fpfa_core.Flow.simplify_report.Transform.Simplify.after in
  Format.printf "=== graph minimisation (paper Fig. 3) ===@.";
  Format.printf "generated CDFG : %a@." Cdfg.Graph.pp_stats before;
  Format.printf "simplified     : %a@." Cdfg.Graph.pp_stats after;
  Format.printf
    "(the simplified graph has one FE per array input, one multiply per \
     tap,@. a balanced adder tree and exactly two stores: sum and i)@.@.";

  (* Fig. 4: the level schedule on the 5 physical ALUs. *)
  Format.printf "=== cluster schedule (paper Fig. 4) ===@.%a@." Mapping.Sched.pp
    result.Fpfa_core.Flow.schedule;

  (* Fig. 5: the allocation result, cycle by cycle. *)
  Format.printf "@.=== per-cycle job (paper Fig. 5 output) ===@.%a@."
    Mapping.Job.pp result.Fpfa_core.Flow.job;

  let memory_init = kernel.Fpfa_kernels.Kernels.inputs in
  Format.printf "verified: %b@." (Fpfa_core.Flow.verify ~memory_init result);

  (* Write the Fig. 3 graph for visual inspection. *)
  Cdfg.Dot.to_file result.Fpfa_core.Flow.graph "fir_simplified.dot";
  Format.printf "wrote fir_simplified.dot (render with: dot -Tpng)@."
