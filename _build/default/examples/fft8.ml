(* An 8-point radix-2 integer FFT, mapped two ways:

   1. monolithic: the whole transform as one configuration;
   2. staged: bit-reversal + three butterfly stages as successive
      configurations (paper ref. [3]'s dynamic reconfiguration), with
      two-way memory interleaving.

   Twiddle factors are scaled by 256 (8.8 fixed point); products are
   renormalised with an arithmetic shift. Everything is integer-exact, so
   the tile results are verified against the reference interpreter.

   Run with: dune exec examples/fft8.exe *)

let stage_sources =
  {|
void bit_reverse() {
  /* 8-point bit-reversal permutation: 0 4 2 6 1 5 3 7 */
  br[0] = xr[0]; bi[0] = xi[0];
  br[1] = xr[4]; bi[1] = xi[4];
  br[2] = xr[2]; bi[2] = xi[2];
  br[3] = xr[6]; bi[3] = xi[6];
  br[4] = xr[1]; bi[4] = xi[1];
  br[5] = xr[5]; bi[5] = xi[5];
  br[6] = xr[3]; bi[6] = xi[3];
  br[7] = xr[7]; bi[7] = xi[7];
}
void stage1() {
  /* span-1 butterflies, twiddle W0 = (256, 0) */
  for (k = 0; k < 4; k++) {
    ar = br[2 * k];     ai = bi[2 * k];
    cr = br[2 * k + 1]; ci = bi[2 * k + 1];
    br[2 * k] = ar + cr;     bi[2 * k] = ai + ci;
    br[2 * k + 1] = ar - cr; bi[2 * k + 1] = ai - ci;
  }
}
void stage2() {
  /* span-2 butterflies, twiddles W0 and W2 = (0, -256) */
  for (g = 0; g < 2; g++) {
    ar = br[4 * g];     ai = bi[4 * g];
    cr = br[4 * g + 2]; ci = bi[4 * g + 2];
    br[4 * g] = ar + cr;     bi[4 * g] = ai + ci;
    br[4 * g + 2] = ar - cr; bi[4 * g + 2] = ai - ci;
    ar = br[4 * g + 1]; ai = bi[4 * g + 1];
    /* (cr + j ci) * (0 - 256 j) >> 8  =  (ci, -cr) */
    tr = bi[4 * g + 3];
    ti = -br[4 * g + 3];
    br[4 * g + 1] = ar + tr;  bi[4 * g + 1] = ai + ti;
    br[4 * g + 3] = ar - tr;  bi[4 * g + 3] = ai - ti;
  }
}
void stage3() {
  /* span-4 butterflies, twiddles W0..W3 (scaled by 256) */
  wr[0] = 256;  wi[0] = 0;
  wr[1] = 181;  wi[1] = -181;
  wr[2] = 0;    wi[2] = -256;
  wr[3] = -181; wi[3] = -181;
  for (k = 0; k < 4; k++) {
    ar = br[k];     ai = bi[k];
    cr = br[k + 4]; ci = bi[k + 4];
    tr = (cr * wr[k] - ci * wi[k]) >> 8;
    ti = (cr * wi[k] + ci * wr[k]) >> 8;
    yr[k] = ar + tr;     yi[k] = ai + ti;
    yr[k + 4] = ar - tr; yi[k + 4] = ai - ti;
  }
}
|}

(* The same transform as one function (fully unrolled by the flow). *)
let monolithic =
  {|
void main() {
|}
  ^ (let body =
       String.concat "\n"
         [
           "  bit_reverse();";
           "  stage1();";
           "  stage2();";
           "  stage3();";
         ]
     in
     body)
  ^ {|
}
|}
  ^ stage_sources

let stages = [ "bit_reverse"; "stage1"; "stage2"; "stage3" ]

let input =
  [
    ("xr", [| 100; 0; -100; 0; 100; 0; -100; 0 |]);
    ("xi", [| 0; 50; 0; -50; 0; 50; 0; -50 |]);
  ]

let interleaved_config =
  {
    Fpfa_core.Flow.default_config with
    Fpfa_core.Flow.alloc_options =
      {
        Mapping.Alloc.default_options with
        Mapping.Alloc.interleave = true;
      };
  }

let () =
  Format.printf "=== 8-point integer FFT ===@.";

  (* staged, reconfigured per stage *)
  let pipeline =
    Fpfa_core.Pipeline.map ~config:interleaved_config stage_sources
      ~funcs:stages
  in
  Format.printf "@.staged (4 configurations, interleaved memories):@.%a@."
    Fpfa_core.Pipeline.pp pipeline;
  let staged_ok =
    Fpfa_core.Pipeline.verify ~memory_init:input stage_sources ~funcs:stages
  in

  (* monolithic: calls inlined, everything one configuration *)
  let mono = Fpfa_core.Flow.map_source ~config:interleaved_config monolithic in
  Format.printf "@.monolithic (1 configuration):@.%a@."
    Fpfa_core.Flow.pp_summary mono;
  let mono_ok = Fpfa_core.Flow.verify ~memory_init:input mono in
  let mono_words = Mapping.Encode.size_words mono.Fpfa_core.Flow.job in

  let staged_cycles = pipeline.Fpfa_core.Pipeline.total_compute_cycles in
  let staged_words =
    Fpfa_util.Listx.sum
      (List.map
         (fun (s : Fpfa_core.Pipeline.stage) -> s.Fpfa_core.Pipeline.config_words)
         pipeline.Fpfa_core.Pipeline.stages)
  in
  Format.printf
    "@.staged: %d compute cycles, %d config words (largest stage resident \
     at a time)@.monolithic: %d compute cycles, %d config words@."
    staged_cycles staged_words
    mono.Fpfa_core.Flow.metrics.Mapping.Metrics.cycles mono_words;

  (* spectrum: bins 2 and 6 carry the energy of this input *)
  let final = Fpfa_core.Pipeline.run ~memory_init:input pipeline in
  Format.printf "@.spectrum (real, imag):@.";
  let yr = List.assoc "yr" final and yi = List.assoc "yi" final in
  Array.iteri
    (fun k re -> Format.printf "  bin %d: (%d, %d)@." k re yi.(k))
    yr;

  Format.printf "@.verified: staged=%b monolithic=%b@." staged_ok mono_ok;
  assert (staged_ok && mono_ok)
