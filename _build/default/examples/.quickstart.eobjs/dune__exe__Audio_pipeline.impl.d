examples/audio_pipeline.ml: Array Format Fpfa_core List Mapping Printf String
