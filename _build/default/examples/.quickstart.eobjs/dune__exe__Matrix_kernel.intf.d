examples/matrix_kernel.mli:
