examples/fir_filter.ml: Cdfg Format Fpfa_core Fpfa_kernels Mapping Transform
