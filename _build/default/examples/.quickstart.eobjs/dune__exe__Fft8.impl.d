examples/fft8.ml: Array Format Fpfa_core Fpfa_util List Mapping String
