examples/matrix_kernel.ml: Array Baseline Format Fpfa_core Fpfa_kernels Fpfa_util List Mapping
