examples/loop_reuse.mli:
