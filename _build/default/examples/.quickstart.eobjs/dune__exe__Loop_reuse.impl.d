examples/loop_reuse.ml: Array Format Fpfa_core List Mapping String
