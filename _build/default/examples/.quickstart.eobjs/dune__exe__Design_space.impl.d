examples/design_space.ml: Format Fpfa_arch Fpfa_core Fpfa_kernels Fpfa_util List Mapping Printf
