examples/quickstart.mli:
