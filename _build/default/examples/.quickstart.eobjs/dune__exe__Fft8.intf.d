examples/fft8.mli:
