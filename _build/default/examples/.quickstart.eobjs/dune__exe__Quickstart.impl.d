examples/quickstart.ml: Array Format Fpfa_core Fpfa_sim List Mapping String
