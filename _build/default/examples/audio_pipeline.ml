(* A multi-kernel audio front-end as successive tile configurations —
   the FPFA's signature use case (the paper's reference [3] is "Dynamic
   Reconfiguration in Mobile Systems"): the tile is reconfigured between
   DSP stages while the statespace contents persist.

   Stage 1  dc_remove   subtract the block mean
   Stage 2  agc         normalise to a target peak (fixed-point)
   Stage 3  lowpass     3-tap smoothing FIR
   Stage 4  energy      output power estimate

   Run with: dune exec examples/audio_pipeline.exe *)

let block = 8

let source =
  Printf.sprintf
    {|
int mean8() {
  acc = 0;
  for (i = 0; i < %d; i++) { acc += pcm[i]; }
  return acc / %d;
}
void dc_remove() {
  m = mean8();
  for (i = 0; i < %d; i++) { centered[i] = pcm[i] - m; }
}
void agc() {
  peak = 1;
  for (i = 0; i < %d; i++) { peak = max(peak, abs(centered[i])); }
  /* scale to a +-1024 target in 10.6 fixed point */
  for (i = 0; i < %d; i++) { leveled[i] = (centered[i] << 6) / peak * 16; }
}
void lowpass() {
  for (i = 0; i < %d; i++) {
    filtered[i] = (leveled[i] + 2 * leveled[i + 1] + leveled[i + 2]) >> 2;
  }
}
void energy() {
  e = 0;
  for (i = 0; i < %d; i++) { e += (filtered[i] * filtered[i]) >> 8; }
}
|}
    block block block block block (block - 2) (block - 2)

let stages = [ "dc_remove"; "agc"; "lowpass"; "energy" ]

let pcm = [| 120; 340; -80; 510; 260; -150; 90; 430 |]

let () =
  Format.printf "=== application (4 kernels, %d-sample blocks) ===@.%s@."
    block source;

  let pipeline = Fpfa_core.Pipeline.map source ~funcs:stages in
  Format.printf "=== configurations ===@.%a@.@." Fpfa_core.Pipeline.pp pipeline;

  let memory_init = [ ("pcm", pcm) ] in
  let final = Fpfa_core.Pipeline.run ~memory_init pipeline in
  Format.printf "=== tile results after the last stage ===@.";
  List.iter
    (fun name ->
      match List.assoc_opt name final with
      | Some contents ->
        Format.printf "%-9s = [%s]@." name
          (String.concat "; "
             (Array.to_list (Array.map string_of_int contents)))
      | None -> ())
    [ "pcm"; "centered"; "leveled"; "filtered"; "e" ];

  Format.printf "@.verified against the reference interpreter: %b@."
    (Fpfa_core.Pipeline.verify ~memory_init source ~funcs:stages);

  (* Reconfiguration economics: with this cost model, how many blocks must
     stream through before compute dominates configuration loading? *)
  let compute = pipeline.Fpfa_core.Pipeline.total_compute_cycles in
  let reconfig = pipeline.Fpfa_core.Pipeline.total_reconfig_cycles in
  Format.printf
    "@.one block: %d compute vs %d reconfiguration cycles — configurations \
     amortise@.after ~%d blocks if kept resident per stage.@."
    compute reconfig
    ((reconfig + compute - 1) / compute);

  (* The same pipeline with loop-configuration reuse inside each stage:
     both reconfiguration mechanisms at once. *)
  let reuse = Fpfa_core.Pipeline.map_reuse source ~funcs:stages in
  Format.printf "@.=== with loop-configuration reuse per stage ===@.%a@."
    Fpfa_core.Pipeline.pp_reuse reuse;
  Format.printf "verified (reuse): %b@."
    (Fpfa_core.Pipeline.verify_reuse ~memory_init source ~funcs:stages);

  (* The per-PP timeline of the widest stage. *)
  let widest =
    List.nth pipeline.Fpfa_core.Pipeline.stages 1 (* agc *)
  in
  Format.printf "@.=== timeline of stage %s ===@.%a@."
    widest.Fpfa_core.Pipeline.stage_name Mapping.Job.pp_gantt
    widest.Fpfa_core.Pipeline.result.Fpfa_core.Flow.job
